//! Recursive-descent parser for the RecDB SQL dialect.
//!
//! The grammar (keywords case-insensitive):
//!
//! ```text
//! statement      := create_table | drop_table | insert | create_rec
//!                 | drop_rec | select | begin | commit | rollback
//! begin          := (BEGIN | START TRANSACTION) [TRANSACTION | WORK]
//! commit         := COMMIT [TRANSACTION | WORK]
//! rollback       := (ROLLBACK | ABORT) [TRANSACTION | WORK]
//! create_table   := CREATE TABLE ident '(' col_def (',' col_def)* ')'
//! drop_table     := DROP TABLE ident
//! insert         := INSERT INTO ident VALUES row (',' row)*
//! create_rec     := CREATE RECOMMENDER ident ON ident
//!                   USERS FROM ident ITEMS FROM ident RATINGS FROM ident
//!                   USING ident
//! drop_rec       := DROP RECOMMENDER ident
//! select         := SELECT select_list FROM table_ref (',' table_ref)*
//!                   [RECOMMEND colref TO colref ON colref USING ident]
//!                   [WHERE expr] [ORDER BY order_key (',' order_key)*]
//!                   [LIMIT int]
//! expr           := or_expr
//! or_expr        := and_expr (OR and_expr)*
//! and_expr       := not_expr (AND not_expr)*
//! not_expr       := NOT not_expr | cmp_expr
//! cmp_expr       := add_expr [(=|!=|<|<=|>|>=) add_expr
//!                 | [NOT] IN '(' expr (',' expr)* ')'
//!                 | [NOT] BETWEEN add_expr AND add_expr]
//! add_expr       := mul_expr ((+|-) mul_expr)*
//! mul_expr       := unary ((*|/) unary)*
//! unary          := '-' unary | primary
//! primary        := literal | colref | func '(' args ')' | '(' expr ')'
//! ```

use crate::ast::*;
use crate::token::{tokenize, Token, TokenKind};
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the problem in the source, when known.
    pub offset: Option<usize>,
}

impl ParseError {
    fn new(message: impl Into<String>, offset: Option<usize>) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at offset {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_many(src)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ParseError::new("empty statement", None)),
        n => Err(ParseError::new(
            format!("expected one statement, found {n}"),
            None,
        )),
    }
}

/// Parse a `;`-separated script into statements.
pub fn parse_many(src: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError::new(e.message.clone(), Some(e.offset)))?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(&TokenKind::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Maximum expression-nesting depth. A recursive-descent parser consumes
/// native stack per nesting level, so adversarial inputs like `((((…1`
/// must be rejected with a [`ParseError`] well before the stack runs out
/// (stack overflow aborts the process and cannot be caught).
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression-recursion depth, bounded by [`MAX_EXPR_DEPTH`].
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek().map(|t| t.offset))
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected keyword `{kw}`, found {}",
                self.describe_current()
            )))
        }
    }

    fn eat_symbol(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat_symbol(kind) {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected `{kind}`, found {}",
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{}`", t.kind),
            None => "end of input".to_owned(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_here(format!(
                "expected {what}, found {}",
                self.describe_current()
            ))),
        }
    }

    /// `ident` or `ident.ident` as a reference string.
    fn column_reference(&mut self, what: &str) -> Result<String, ParseError> {
        let first = self.ident(what)?;
        if self.eat_symbol(&TokenKind::Dot) {
            let second = self.ident("column name")?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    /// Swallow the optional `TRANSACTION` / `WORK` noise word after a
    /// transaction-control keyword.
    fn eat_txn_noise_word(&mut self) {
        let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("CREATE") {
            match self.peek_at(1) {
                Some(t) if t.is_keyword("TABLE") => return self.create_table(),
                Some(t) if t.is_keyword("RECOMMENDER") => return self.create_recommender(),
                Some(t) if t.is_keyword("INDEX") => return self.create_index(),
                _ => {
                    return Err(
                        self.error_here("expected TABLE, INDEX, or RECOMMENDER after CREATE")
                    )
                }
            }
        }
        if self.peek_keyword("DROP") {
            match self.peek_at(1) {
                Some(t) if t.is_keyword("TABLE") => {
                    self.pos += 2;
                    let name = self.ident("table name")?;
                    return Ok(Statement::DropTable { name });
                }
                Some(t) if t.is_keyword("RECOMMENDER") => {
                    self.pos += 2;
                    let name = self.ident("recommender name")?;
                    return Ok(Statement::DropRecommender { name });
                }
                Some(t) if t.is_keyword("INDEX") => {
                    self.pos += 2;
                    let name = self.ident("index name")?;
                    self.expect_keyword("ON")?;
                    let table = self.ident("table name")?;
                    return Ok(Statement::DropIndex { name, table });
                }
                _ => {
                    return Err(self.error_here("expected TABLE, INDEX, or RECOMMENDER after DROP"))
                }
            }
        }
        if self.peek_keyword("INSERT") {
            return self.insert();
        }
        if self.peek_keyword("DELETE") {
            self.pos += 1;
            self.expect_keyword("FROM")?;
            let table = self.ident("table name")?;
            let filter = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        if self.peek_keyword("UPDATE") {
            self.pos += 1;
            let table = self.ident("table name")?;
            self.expect_keyword("SET")?;
            let mut assignments = Vec::new();
            loop {
                let column = self.ident("column name")?;
                self.expect_symbol(&TokenKind::Eq)?;
                let value = self.expr()?;
                assignments.push((column, value));
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            let filter = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                filter,
            });
        }
        if self.peek_keyword("BEGIN") {
            self.pos += 1;
            self.eat_txn_noise_word();
            return Ok(Statement::Begin);
        }
        if self.peek_keyword("START") {
            self.pos += 1;
            self.expect_keyword("TRANSACTION")?;
            return Ok(Statement::Begin);
        }
        if self.peek_keyword("COMMIT") {
            self.pos += 1;
            self.eat_txn_noise_word();
            return Ok(Statement::Commit);
        }
        if self.peek_keyword("ROLLBACK") || self.peek_keyword("ABORT") {
            self.pos += 1;
            self.eat_txn_noise_word();
            return Ok(Statement::Rollback);
        }
        if self.peek_keyword("EXPLAIN") {
            self.pos += 1;
            if self.eat_keyword("ANALYZE") {
                return self.select().map(Statement::ExplainAnalyze);
            }
            return self.select().map(Statement::Explain);
        }
        if self.peek_keyword("SELECT") {
            return self.select().map(Statement::Select);
        }
        Err(self.error_here(format!(
            "expected a statement, found {}",
            self.describe_current()
        )))
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident("table name")?;
        self.expect_symbol(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty = self.ident("type name")?;
            columns.push(ColumnDef {
                name: col,
                type_name: ty,
            });
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_symbol(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("INDEX")?;
        let name = self.ident("index name")?;
        self.expect_keyword("ON")?;
        let table = self.ident("table name")?;
        self.expect_symbol(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident("column name")?);
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_symbol(&TokenKind::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident("table name")?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn create_recommender(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("RECOMMENDER")?;
        let name = self.ident("recommender name")?;
        self.expect_keyword("ON")?;
        let ratings_table = self.ident("ratings table name")?;
        self.expect_keyword("USERS")?;
        self.expect_keyword("FROM")?;
        let users_column = self.ident("users id column")?;
        // The paper writes both `ITEMS FROM` and `ITEM FROM`; accept both.
        if !self.eat_keyword("ITEMS") && !self.eat_keyword("ITEM") {
            return Err(self.error_here("expected ITEMS FROM"));
        }
        self.expect_keyword("FROM")?;
        let items_column = self.ident("items id column")?;
        self.expect_keyword("RATINGS")?;
        self.expect_keyword("FROM")?;
        let ratings_column = self.ident("ratings value column")?;
        self.expect_keyword("USING")?;
        let algorithm = self.ident("algorithm name")?;
        Ok(Statement::CreateRecommender {
            name,
            ratings_table,
            users_column,
            items_column,
            ratings_column,
            algorithm,
        })
    }

    fn select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident("output alias")?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident("table name")?;
            let has_bare_alias = self
                .peek()
                .is_some_and(|t| matches!(&t.kind, TokenKind::Ident(s) if !is_clause_keyword(s)));
            let alias = if self.eat_keyword("AS") || has_bare_alias {
                Some(self.ident("table alias")?)
            } else {
                None
            };
            from.push(TableRef { table, alias });
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        let recommend = if self.eat_keyword("RECOMMEND") {
            let item_column = self.column_reference("item id column")?;
            self.expect_keyword("TO")?;
            let user_column = self.column_reference("user id column")?;
            self.expect_keyword("ON")?;
            let rating_column = self.column_reference("rating value column")?;
            self.expect_keyword("USING")?;
            let algorithm = self.ident("algorithm name")?;
            Some(RecommendClause {
                item_column,
                user_column,
                rating_column,
                algorithm,
            })
        } else {
            None
        };
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token {
                    kind: TokenKind::Int(n),
                    ..
                }) if *n >= 0 => Some(*n as u64),
                _ => {
                    return Err(ParseError::new(
                        "expected a non-negative integer after LIMIT",
                        self.tokens
                            .get(self.pos.saturating_sub(1))
                            .map(|t| t.offset),
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStatement {
            items,
            from,
            recommend,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter_expr()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    /// Charge one level of expression nesting; error out (instead of
    /// overflowing the stack) past [`MAX_EXPR_DEPTH`]. Every
    /// self-recursion in the expression grammar — parenthesized
    /// primaries via [`Parser::expr`], `NOT` chains, unary minus chains —
    /// passes through here.
    fn enter_expr(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            // Callers decrement on unwind, so no reset here; parsing
            // aborts on the propagated error anyway.
            return Err(self.error_here(format!(
                "expression is nested more than {MAX_EXPR_DEPTH} levels deep"
            )));
        }
        Ok(())
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            self.enter_expr()?;
            let inner = self.not_expr();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner?),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        // IN / NOT IN / BETWEEN / NOT BETWEEN
        let negated = {
            let save = self.pos;
            if self.eat_keyword("NOT") {
                if self.peek_keyword("IN") || self.peek_keyword("BETWEEN") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_keyword("IN") {
            self.expect_symbol(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.add_expr()?;
            self.expect_keyword("AND")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected IN or BETWEEN after NOT"));
        }
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => Some(BinaryOp::Eq),
            Some(TokenKind::Neq) => Some(BinaryOp::Neq),
            Some(TokenKind::Lt) => Some(BinaryOp::Lt),
            Some(TokenKind::Le) => Some(BinaryOp::Le),
            Some(TokenKind::Gt) => Some(BinaryOp::Gt),
            Some(TokenKind::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol(&TokenKind::Minus) {
            self.enter_expr()?;
            let inner = self.unary();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner?),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Int(v),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Some(Token {
                kind: TokenKind::Float(v),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                if is_reserved_word(&name) {
                    return Err(self.error_here(format!(
                        "expected an expression, found reserved word `{name}`"
                    )));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                self.pos += 1;
                // Function call?
                if self.peek().map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    // COUNT(*) — the star stands for "rows", not a column.
                    if name.eq_ignore_ascii_case("count")
                        && self.peek().map(|t| &t.kind) == Some(&TokenKind::Star)
                    {
                        self.pos += 1;
                        self.expect_symbol(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name,
                            args: Vec::new(),
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek().map(|t| &t.kind) != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(&TokenKind::RParen)?;
                    return Ok(Expr::Function { name, args });
                }
                // Qualified column?
                if self.eat_symbol(&TokenKind::Dot) {
                    let col = self.ident("column name")?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            _ => Err(self.error_here(format!(
                "expected an expression, found {}",
                self.describe_current()
            ))),
        }
    }
}

/// Fully reserved words that can never appear in expression position.
fn is_reserved_word(s: &str) -> bool {
    const RESERVED: [&str; 12] = [
        "SELECT",
        "FROM",
        "WHERE",
        "ORDER",
        "LIMIT",
        "RECOMMEND",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "AS",
    ];
    RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// Identifiers that terminate a bare (AS-less) table alias in FROM.
fn is_clause_keyword(s: &str) -> bool {
    const CLAUSES: [&str; 9] = [
        "RECOMMEND",
        "WHERE",
        "ORDER",
        "LIMIT",
        "GROUP",
        "HAVING",
        "UNION",
        "ON",
        "USING",
    ];
    CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Parenthesized primaries, NOT chains, and unary-minus chains all
        // self-recurse; each must hit the depth limit as a ParseError.
        let deep_parens = format!("SELECT {}1{} FROM t", "(".repeat(5000), ")".repeat(5000));
        let err = parse(&deep_parens).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");

        let deep_not = format!("SELECT * FROM t WHERE {} a = 1", "NOT ".repeat(5000));
        let err = parse(&deep_not).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");

        let deep_minus = format!("SELECT {}1 FROM t", "- ".repeat(5000));
        let err = parse(&deep_minus).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let nested = format!("SELECT {}1 + 1{} FROM t", "(".repeat(60), ")".repeat(60));
        parse(&nested).unwrap();
        let nots = format!("SELECT * FROM t WHERE {} a = 1", "NOT ".repeat(60));
        parse(&nots).unwrap();
    }

    #[test]
    fn parse_paper_recommender1() {
        let stmt = parse(
            "Create Recommender GeneralRec On Ratings \
             Users From uid Item From iid Ratings From ratingval \
             Using ItemCosCF",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::CreateRecommender {
                name: "GeneralRec".into(),
                ratings_table: "Ratings".into(),
                users_column: "uid".into(),
                items_column: "iid".into(),
                ratings_column: "ratingval".into(),
                algorithm: "ItemCosCF".into(),
            }
        );
    }

    #[test]
    fn parse_paper_query1() {
        let stmt = parse(
            "Select R.uid, R.iid, R.ratingval From Ratings as R \
             Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF \
             Where R.uid=1 \
             Order By R.ratingVal Desc Limit 10",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("expected SELECT")
        };
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].binding(), "R");
        let rec = s.recommend.unwrap();
        assert_eq!(rec.item_column, "R.iid");
        assert_eq!(rec.user_column, "R.uid");
        assert_eq!(rec.rating_column, "R.ratingVal");
        assert_eq!(rec.algorithm, "ItemCosCF");
        assert!(s.filter.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parse_paper_query3_in_list() {
        let stmt = parse(
            "Select R.iid, R.ratingval From Ratings as R \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF \
             Where R.uid=1 And R.iid In (1,2,3,4,5)",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let filter = s.filter.unwrap();
        let parts = filter.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[1], Expr::InList { list, .. } if list.len() == 5));
    }

    #[test]
    fn parse_paper_query4_join() {
        let stmt = parse(
            "Select R.uid, M.name, R.ratingval From Ratings as R, Movies as M \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF \
             Where R.uid=1 And M.iid = R.iid And M.genre='Action'",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.filter.unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn parse_paper_query5_bare_alias() {
        // `Movies M` without AS.
        let stmt = parse(
            "Select M.name, R.ratingval From Ratings as R, Movies M \
             Recommend R.iid To R.uid On R.ratingval Using SVD \
             Where R.uid=1 And M.iid=R.iid And M.genre='Action' \
             Order By R.ratingval Desc Limit 5",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from[1].table, "Movies");
        assert_eq!(s.from[1].binding(), "M");
        assert_eq!(s.recommend.unwrap().algorithm, "SVD");
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parse_paper_query6_spatial() {
        let stmt = parse(
            "Select H.name, R.ratingval \
             From HotelRatings as R, Hotels as H, City as C \
             Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF \
             Where R.uid=1 AND R.iid=H.vid AND C.name = 'San Diego' \
             AND ST_Contains(C.geom, H.geom)",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.len(), 3);
        let parts_owned = s.filter.unwrap();
        let parts = parts_owned.conjuncts();
        assert_eq!(parts.len(), 4);
        assert!(
            matches!(parts[3], Expr::Function { name, args } if name == "ST_Contains" && args.len() == 2)
        );
    }

    #[test]
    fn parse_paper_query8_cscore_ordering() {
        let stmt = parse(
            "Select V.name, V.address From Ratings as R, Restaurants as V \
             Recommend R.iid To R.uid On R.ratingVal Using UserPearCF \
             Where R.uid=1 AND R.iid=V.vid \
             Order By CScore(R.ratingVal, ST_Distance(V.geom, ULoc)) Desc Limit 3",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert!(matches!(
            &s.order_by[0].expr,
            Expr::Function { name, args } if name == "CScore" && args.len() == 2
        ));
    }

    #[test]
    fn parse_create_and_drop_table() {
        let stmt =
            parse("CREATE TABLE movies (mid INT, name TEXT, genre TEXT, loc POINT)").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateTable { ref name, ref columns }
                if name == "movies" && columns.len() == 4
        ));
        assert_eq!(
            parse("DROP TABLE movies").unwrap(),
            Statement::DropTable {
                name: "movies".into()
            }
        );
        assert_eq!(
            parse("DROP RECOMMENDER GeneralRec").unwrap(),
            Statement::DropRecommender {
                name: "GeneralRec".into()
            }
        );
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt =
            parse("INSERT INTO ratings VALUES (1, 1, 1.5), (2, 1, 4.5), (2, 2, -3.5)").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "ratings");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 3);
        assert!(matches!(
            rows[2][2],
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn precedence_and_parens() {
        let Statement::Select(s) =
            parse("SELECT a + b * c FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap()
        else {
            panic!()
        };
        // a + (b * c)
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
        // x = 1 OR (y = 2 AND z = 3)
        assert!(matches!(
            s.filter.unwrap(),
            Expr::Binary {
                op: BinaryOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn between_and_not_variants() {
        let Statement::Select(s) =
            parse("SELECT * FROM t WHERE r BETWEEN 2 AND 4 AND i NOT IN (1, 2) AND NOT b").unwrap()
        else {
            panic!()
        };
        let filter = s.filter.unwrap();
        let parts = filter.conjuncts();
        assert!(matches!(parts[0], Expr::Between { negated: false, .. }));
        assert!(matches!(parts[1], Expr::InList { negated: true, .. }));
        assert!(matches!(
            parts[2],
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn select_star_and_aliases() {
        let Statement::Select(s) = parse("SELECT *, uid AS user_id FROM ratings").unwrap() else {
            panic!()
        };
        assert_eq!(s.items.len(), 2);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "user_id"
        ));
    }

    #[test]
    fn parse_many_script() {
        let stmts =
            parse_many("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_transaction_control() {
        for (sql, expected) in [
            ("BEGIN", Statement::Begin),
            ("begin transaction", Statement::Begin),
            ("BEGIN WORK", Statement::Begin),
            ("START TRANSACTION", Statement::Begin),
            ("COMMIT", Statement::Commit),
            ("commit work", Statement::Commit),
            ("COMMIT TRANSACTION", Statement::Commit),
            ("ROLLBACK", Statement::Rollback),
            ("rollback transaction", Statement::Rollback),
            ("ABORT", Statement::Rollback),
        ] {
            assert_eq!(parse(sql).unwrap(), expected, "{sql}");
        }
        // START alone is not a statement, and trailing garbage is caught.
        assert!(parse("START").is_err());
        assert!(parse("BEGIN COMMIT").is_err());
        let stmts = parse_many("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0], Statement::Begin);
        assert_eq!(stmts[2], Statement::Commit);
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(err.message.contains("expression"));
        let err = parse("CREATE VIEW v").unwrap_err();
        assert!(err.message.contains("TABLE, INDEX, or RECOMMENDER"));
        let err = parse("SELECT * FROM t LIMIT x").unwrap_err();
        assert!(err.message.contains("LIMIT"));
    }

    #[test]
    fn literal_keywords() {
        let Statement::Select(s) = parse("SELECT NULL, TRUE, FALSE FROM t").unwrap() else {
            panic!()
        };
        let exprs: Vec<&Expr> = s
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, .. } => expr,
                _ => panic!(),
            })
            .collect();
        assert_eq!(exprs[0], &Expr::Literal(Literal::Null));
        assert_eq!(exprs[1], &Expr::Literal(Literal::Bool(true)));
        assert_eq!(exprs[2], &Expr::Literal(Literal::Bool(false)));
    }

    #[test]
    fn function_with_no_args() {
        let Statement::Select(s) = parse("SELECT now() FROM t").unwrap() else {
            panic!()
        };
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Function { name, args },
                ..
            } if name == "now" && args.is_empty()
        ));
    }

    #[test]
    fn group_by_and_aggregates_parse() {
        let Statement::Select(s) = parse(
            "SELECT genre, COUNT(*), AVG(ratingval) AS mean \
             FROM movies GROUP BY genre ORDER BY mean DESC LIMIT 3",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: Expr::Function { name, args }, .. }
                if name.eq_ignore_ascii_case("count") && args.is_empty()
        ));
        assert!(matches!(
            &s.items[2],
            SelectItem::Expr { expr: Expr::Function { name, args }, alias: Some(a) }
                if name.eq_ignore_ascii_case("avg") && args.len() == 1 && a == "mean"
        ));
    }

    #[test]
    fn group_by_multiple_keys() {
        let Statement::Select(s) = parse("SELECT a, b, SUM(c) FROM t GROUP BY a, b").unwrap()
        else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn create_and_drop_index_parse() {
        assert_eq!(
            parse("CREATE INDEX ratings_uid ON ratings (uid, iid)").unwrap(),
            Statement::CreateIndex {
                name: "ratings_uid".into(),
                table: "ratings".into(),
                columns: vec!["uid".into(), "iid".into()],
            }
        );
        assert_eq!(
            parse("DROP INDEX ratings_uid ON ratings").unwrap(),
            Statement::DropIndex {
                name: "ratings_uid".into(),
                table: "ratings".into(),
            }
        );
        assert!(parse("CREATE INDEX i ON t ()").is_err());
        assert!(parse("DROP INDEX i").is_err());
    }

    #[test]
    fn explain_parses() {
        assert!(matches!(
            parse("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT * FROM t WHERE a = 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        assert!(parse("EXPLAIN DROP TABLE t").is_err());
        assert!(parse("EXPLAIN ANALYZE DROP TABLE t").is_err());
    }

    #[test]
    fn delete_and_update_parse() {
        assert_eq!(
            parse("DELETE FROM ratings WHERE uid = 1").unwrap(),
            Statement::Delete {
                table: "ratings".into(),
                filter: Some(Expr::Binary {
                    op: BinaryOp::Eq,
                    left: Box::new(Expr::col("uid")),
                    right: Box::new(Expr::int(1)),
                }),
            }
        );
        assert!(matches!(
            parse("DELETE FROM ratings").unwrap(),
            Statement::Delete { filter: None, .. }
        ));
        let Statement::Update {
            table,
            assignments,
            filter,
        } = parse("UPDATE ratings SET ratingval = 5.0, iid = iid + 1 WHERE uid = 2").unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "ratings");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].0, "ratingval");
        assert!(filter.is_some());
        assert!(parse("UPDATE t SET").is_err());
        assert!(parse("DELETE ratings").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t WHERE").is_err());
        // Two statements through `parse` (singular) is an error.
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err());
    }
}
