//! The abstract syntax tree of the RecDB SQL dialect.

use std::fmt;

/// A literal value in SQL source.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Binary operators, loosest-binding first in the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// A column reference, optionally qualified (`R.uid` or `uid`).
    Column {
        /// Relation qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IN (e1, e2, …)`.
    InList {
        /// The probe expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// The probe expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// A function call (`ST_Contains(...)`, `CScore(...)`, `POINT(x, y)`).
    Function {
        /// Function name (matched case-insensitively at bind time).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_owned()),
            name: name.to_owned(),
        }
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// The full reference text of a column expression (`R.uid`), if this
    /// is one.
    pub fn column_ref(&self) -> Option<String> {
        match self {
            Expr::Column { qualifier, name } => Some(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            }),
            _ => None,
        }
    }

    /// Split an AND tree into its conjuncts (a single non-AND expression
    /// yields itself). The optimizer works conjunct by conjunct.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Rebuild an AND tree from conjuncts; `None` when empty.
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(exprs.into_iter().fold(first, |acc, e| Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(acc),
            right: Box::new(e),
        }))
    }
}

/// A table reference in FROM: `Ratings AS R` / `Movies M` / `Hotels`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias, if written.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the query refers to this relation by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// The paper's `RECOMMEND <item> TO <user> ON <rating> USING <algo>` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecommendClause {
    /// The item-id column (`R.iid`).
    pub item_column: String,
    /// The user-id column (`R.uid`).
    pub user_column: String,
    /// The rating-value column (`R.ratingval`).
    pub rating_column: String,
    /// Algorithm name as written (`ItemCosCF`, `SVD`, …).
    pub algorithm: String,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// True for descending.
    pub desc: bool,
}

/// One item in the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional output alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, if written.
        alias: Option<String>,
    },
}

/// A SELECT statement, possibly recommendation-aware.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The select list.
    pub items: Vec<SelectItem>,
    /// FROM relations (comma join).
    pub from: Vec<TableRef>,
    /// The RECOMMEND clause, when present.
    pub recommend: Option<RecommendClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type name as written (`INT`, `FLOAT`, `TEXT`, `BOOL`, `POINT`,
    /// with common synonyms resolved at bind time).
    pub type_name: String,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row expressions (constant-foldable).
        rows: Vec<Vec<Expr>>,
    },
    /// `CREATE RECOMMENDER … USING …` (§III-A).
    CreateRecommender {
        /// Recommender name.
        name: String,
        /// Ratings table.
        ratings_table: String,
        /// Users-id column.
        users_column: String,
        /// Items-id column.
        items_column: String,
        /// Ratings-value column.
        ratings_column: String,
        /// Algorithm name.
        algorithm: String,
    },
    /// `DROP RECOMMENDER name`.
    DropRecommender {
        /// Recommender name.
        name: String,
    },
    /// `DELETE FROM name [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Row predicate; `None` deletes everything.
        filter: Option<Expr>,
    },
    /// `UPDATE name SET col = expr, … [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Row predicate; `None` updates everything.
        filter: Option<Expr>,
    },
    /// `CREATE INDEX name ON table (col, …)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns, leading column first.
        columns: Vec<String>,
    },
    /// `DROP INDEX name ON table`.
    DropIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
    },
    /// `EXPLAIN SELECT …` — show the optimized plan instead of running.
    Explain(SelectStatement),
    /// `EXPLAIN ANALYZE SELECT …` — run the statement and show the plan
    /// annotated with per-operator actuals (rows, calls, time).
    ExplainAnalyze(SelectStatement),
    /// A SELECT (with or without RECOMMEND).
    Select(SelectStatement),
    /// `BEGIN` / `START TRANSACTION` — open an explicit transaction.
    Begin,
    /// `COMMIT` — make the current transaction's changes durable.
    Commit,
    /// `ROLLBACK` / `ABORT` — undo the current transaction's changes.
    Rollback,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    /// SQL-ish rendering, fully parenthesized for unambiguity — used by
    /// `EXPLAIN` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(lit) => write!(f, "{lit}"),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::Not => write!(f, "NOT {expr}"),
            },
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function { name, args } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "{name}({})", items.join(", "))
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_is_sqlish() {
        let e = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(Expr::qcol("R", "uid")),
                right: Box::new(Expr::int(1)),
            }),
            right: Box::new(Expr::InList {
                expr: Box::new(Expr::col("iid")),
                list: vec![Expr::int(1), Expr::int(2)],
                negated: false,
            }),
        };
        assert_eq!(e.to_string(), "((R.uid = 1) AND iid IN (1, 2))");
        let fun = Expr::Function {
            name: "ST_DWithin".into(),
            args: vec![Expr::col("loc"), Expr::col("p"), Expr::int(5)],
        };
        assert_eq!(fun.to_string(), "ST_DWithin(loc, p, 5)");
        let b = Expr::Between {
            expr: Box::new(Expr::col("r")),
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(4)),
            negated: true,
        };
        assert_eq!(b.to_string(), "r NOT BETWEEN 1 AND 4");
    }

    #[test]
    fn conjunct_splitting() {
        // (a AND b) AND c → [a, b, c]
        let e = Expr::and_all(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &Expr::col("a"));
        assert_eq!(parts[2], &Expr::col("c"));
    }

    #[test]
    fn conjuncts_of_leaf_is_itself() {
        let e = Expr::col("x");
        assert_eq!(e.conjuncts(), vec![&Expr::col("x")]);
    }

    #[test]
    fn and_all_of_empty_is_none() {
        assert_eq!(Expr::and_all(vec![]), None);
        assert_eq!(Expr::and_all(vec![Expr::col("a")]), Some(Expr::col("a")));
    }

    #[test]
    fn or_does_not_split() {
        let e = Expr::Binary {
            op: BinaryOp::Or,
            left: Box::new(Expr::col("a")),
            right: Box::new(Expr::col("b")),
        };
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn column_ref_text() {
        assert_eq!(Expr::qcol("R", "uid").column_ref().unwrap(), "R.uid");
        assert_eq!(Expr::col("uid").column_ref().unwrap(), "uid");
        assert_eq!(Expr::int(3).column_ref(), None);
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            table: "Ratings".into(),
            alias: Some("R".into()),
        };
        assert_eq!(t.binding(), "R");
        let t = TableRef {
            table: "Movies".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "Movies");
    }
}
