//! The SQL lexer.
//!
//! Identifiers and keywords share one token kind — the parser matches
//! keywords case-insensitively by text, which lets names like `users` or
//! `ratings` double as table names (as they do throughout the paper).

use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`SELECT`, `Ratings`, `uid`, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Neq => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Semicolon => f.write_str(";"),
        }
    }
}

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenize SQL source. Supports `--` line comments.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            '.' if !bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false) => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Neq,
                    offset: i,
                });
                i += 2;
            }
            '<' => {
                let (kind, n) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Le, 2),
                    Some(b'>') => (TokenKind::Neq, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += n;
            }
            '>' => {
                let (kind, n) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += n;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false)) =>
            {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E')
                        && !saw_exp
                        && bytes
                            .get(i + 1)
                            .map(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                            .unwrap_or(false)
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == b'-' || bytes[i] == b'+' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let kind = if saw_dot || saw_exp {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal `{text}`"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal `{text}`"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_paper_query1_fragment() {
        let toks = kinds("Select R.uid From Ratings as R Where R.uid=1 Limit 10");
        assert_eq!(toks[0], TokenKind::Ident("Select".into()));
        assert!(toks.contains(&TokenKind::Eq));
        assert_eq!(*toks.last().unwrap(), TokenKind::Int(10));
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 0.001 1e3 2.5E-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(0.001),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            kinds("'San Diego' 'O''Brien'"),
            vec![
                TokenKind::Str("San Diego".into()),
                TokenKind::Str("O'Brien".into())
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("'open").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("= != <> < <= > >= + - * /"),
            vec![
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            kinds("SELECT -- the select keyword\n1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Int(1)]
        );
    }

    #[test]
    fn dot_vs_float() {
        assert_eq!(
            kinds("R.uid"),
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("uid".into())
            ]
        );
    }

    #[test]
    fn keyword_helper_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_keyword("SELECT"));
        assert!(toks[0].is_keyword("select"));
        assert!(!toks[0].is_keyword("from"));
    }

    #[test]
    fn offsets_track_positions() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("a ยง b").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(
            kinds("ST_Contains ST_DWithin _x"),
            vec![
                TokenKind::Ident("ST_Contains".into()),
                TokenKind::Ident("ST_DWithin".into()),
                TokenKind::Ident("_x".into()),
            ]
        );
    }
}
