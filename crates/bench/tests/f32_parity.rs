//! f32 numeric-parity regression: the CSR/flat-f32 storage layer must not
//! move held-out accuracy. The constants below are the f64-path metrics
//! recorded on LDOS-CoMoDa *before* ratings and SVD factors moved to f32
//! (same split seed, same training knobs). Half-star ratings are exactly
//! representable in f32 and all accumulation stays in f64, so the CF
//! paths reproduce the baseline bit-for-bit; SVD trains through f32
//! factors and is held to the issue's 1e-3 parity budget.

use recdb_algo::eval::{evaluate, split};
use recdb_algo::model::TrainConfig;
use recdb_algo::{Algorithm, SvdParams};
use recdb_datasets::SyntheticSpec;

/// f64-path RMSE/MAE on ldos-comoda, `split(ratings, 0.2, 7)`,
/// `SvdParams { factors: 16, epochs: 20, ..default }`.
const SVD_RMSE_F64: f64 = 0.741160507389;
const SVD_MAE_F64: f64 = 0.588235543080;
const ITEMCF_RMSE_F64: f64 = 0.875773788413;
const ITEMCF_MAE_F64: f64 = 0.701083601412;
const USERCF_RMSE_F64: f64 = 0.925996507564;
const USERCF_MAE_F64: f64 = 0.720817740088;

const TOLERANCE: f64 = 1e-3;

fn ldos_split() -> (Vec<recdb_algo::Rating>, Vec<recdb_algo::Rating>) {
    let dataset = recdb_datasets::generate(&SyntheticSpec::ldos_comoda());
    split(&dataset.algo_ratings(), 0.2, 7)
}

fn config() -> TrainConfig {
    TrainConfig {
        svd: SvdParams {
            factors: 16,
            epochs: 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn svd_f32_rmse_matches_f64_baseline() {
    let (train, test) = ldos_split();
    let acc = evaluate(Algorithm::Svd, train, &test, &config());
    assert!(
        (acc.rmse - SVD_RMSE_F64).abs() < TOLERANCE,
        "SVD RMSE drifted: f32 {} vs f64 baseline {SVD_RMSE_F64}",
        acc.rmse
    );
    assert!(
        (acc.mae - SVD_MAE_F64).abs() < TOLERANCE,
        "SVD MAE drifted: f32 {} vs f64 baseline {SVD_MAE_F64}",
        acc.mae
    );
    assert_eq!(acc.n_test, 462, "split changed — baselines no longer apply");
}

#[test]
fn itemcf_f32_rmse_matches_f64_baseline() {
    let (train, test) = ldos_split();
    let acc = evaluate(Algorithm::ItemCosCF, train, &test, &config());
    assert!(
        (acc.rmse - ITEMCF_RMSE_F64).abs() < TOLERANCE,
        "ItemCosCF RMSE drifted: f32 {} vs f64 baseline {ITEMCF_RMSE_F64}",
        acc.rmse
    );
    assert!(
        (acc.mae - ITEMCF_MAE_F64).abs() < TOLERANCE,
        "ItemCosCF MAE drifted: f32 {} vs f64 baseline {ITEMCF_MAE_F64}",
        acc.mae
    );
}

#[test]
fn usercf_f32_rmse_matches_f64_baseline() {
    let (train, test) = ldos_split();
    let acc = evaluate(Algorithm::UserCosCF, train, &test, &config());
    assert!(
        (acc.rmse - USERCF_RMSE_F64).abs() < TOLERANCE,
        "UserCosCF RMSE drifted: f32 {} vs f64 baseline {USERCF_RMSE_F64}",
        acc.rmse
    );
    assert!(
        (acc.mae - USERCF_MAE_F64).abs() < TOLERANCE,
        "UserCosCF MAE drifted: f32 {} vs f64 baseline {USERCF_MAE_F64}",
        acc.mae
    );
}
