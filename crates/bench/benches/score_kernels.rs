//! Score-kernel microbenchmarks: the flat-f32 `dot` and the batched
//! `score_block` from `recdb_algo::kernels`, at the two factor widths the
//! system actually runs (16 = accuracy-eval default, 64 ≈ the bench
//! config's 50 rounded up to a lane multiple). Each iteration scores one
//! user vector against a 1000-item factor block — the materialization
//! unit shape — so the `dot` series measures per-pair call overhead and
//! the `score_block` series the batched path over the same arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recdb_algo::kernels::{dot, score_block};
use std::time::Duration;

/// Items per scored block (the materialization loop's unit of work).
const BLOCK_ITEMS: usize = 1000;

/// Deterministic xorshift64 fill in [0, 1) — no RNG dependency.
fn factors(f: usize, n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.max(1);
    (0..n * f)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        })
        .collect()
}

fn bench_score_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for f in [16usize, 64] {
        let user = factors(f, 1, 1);
        let items = factors(f, BLOCK_ITEMS, 2);
        group.bench_with_input(BenchmarkId::new("dot", format!("f{f}")), &f, |b, &f| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for chunk in items.chunks_exact(f) {
                    acc += dot(&user, chunk);
                }
                acc
            })
        });
        let mut out = vec![0.0f32; BLOCK_ITEMS];
        group.bench_with_input(
            BenchmarkId::new("score_block", format!("f{f}")),
            &f,
            |b, &f| {
                b.iter(|| {
                    score_block(&user, &items, f, &mut out);
                    out[BLOCK_ITEMS - 1]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_score_kernels);
criterion_main!(benches);
