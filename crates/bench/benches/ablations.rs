//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **pushdown** — the naive Figure 3(a) plan (full Recommend + Filter on
//!   top) vs the optimized FilterRecommend plan, on a selective query;
//! * **join** — pushdown-only plan (Recommend + hash join) vs the full
//!   optimizer's JoinRecommend plan, on the paper's Query 4;
//! * **index** — top-k served online (FilterRecommend + Sort) vs from the
//!   materialized RecScoreIndex (IndexRecommend, sort elided).
//!
//! A quarter-scale MovieLens world keeps the *naive* plans affordable; the
//! relative shapes are scale-free.

use criterion::{criterion_group, criterion_main, Criterion};
use recdb_algo::Algorithm;
use recdb_bench::*;
use recdb_datasets::SyntheticSpec;
use recdb_exec::optimizer::optimize_pushdown_only;
use recdb_exec::{build_logical, execute_plan, optimize, ExecContext};
use recdb_sql::{parse, Statement};
use std::time::Duration;

fn select_of(sql: &str) -> recdb_sql::SelectStatement {
    match parse(sql).unwrap() {
        Statement::Select(s) => s,
        _ => panic!("not a select"),
    }
}

fn bench_ablations(c: &mut Criterion) {
    let algo = Algorithm::ItemCosCF;
    let mut world = World::build(&SyntheticSpec::movielens().scaled(0.25), &[algo]);
    let n_items = world.dataset.items.len();
    let user = world.hot_users[0];

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));

    // ---- pushdown: naive plan vs FilterRecommend --------------------
    let items = item_subset(n_items, 1.0, 7);
    let sel = select_of(&recdb_selectivity_sql(algo, &items));
    {
        let catalog = world.db.catalog();
        let naive = build_logical(&sel, &catalog).unwrap();
        let ctx = ExecContext::new(&catalog, &world.db, recdb_core::QueryGuard::unlimited());
        group.bench_function("pushdown/naive_recommend_then_filter", |b| {
            b.iter(|| execute_plan(&naive, &ctx).unwrap())
        });
        let optimized = optimize(build_logical(&sel, &catalog).unwrap());
        group.bench_function("pushdown/filter_recommend", |b| {
            b.iter(|| execute_plan(&optimized, &ctx).unwrap())
        });
    }

    // ---- join: hash join vs JoinRecommend ---------------------------
    let join_sel = select_of(&recdb_join1_sql(algo, user, "Action"));
    {
        let catalog = world.db.catalog();
        let ctx = ExecContext::new(&catalog, &world.db, recdb_core::QueryGuard::unlimited());
        let pushdown_only = optimize_pushdown_only(build_logical(&join_sel, &catalog).unwrap());
        group.bench_function("join/recommend_then_hash_join", |b| {
            b.iter(|| execute_plan(&pushdown_only, &ctx).unwrap())
        });
        let full = optimize(build_logical(&join_sel, &catalog).unwrap());
        group.bench_function("join/join_recommend", |b| {
            b.iter(|| execute_plan(&full, &ctx).unwrap())
        });
    }

    // ---- index: online top-k vs IndexRecommend ----------------------
    // A user outside the materialized set forces the online path.
    let cold_user = world
        .dataset
        .users
        .iter()
        .map(|u| u.uid)
        .find(|u| !world.hot_users.contains(u))
        .expect("cold user");
    let cold_sql = recdb_topk_sql(algo, cold_user, 10);
    group.bench_function("index/online_topk", |b| {
        b.iter(|| world.run_recdb(&cold_sql))
    });
    let hot_sql = recdb_topk_sql(algo, user, 10);
    group.bench_function("index/index_recommend_topk", |b| {
        b.iter(|| world.run_recdb(&hot_sql))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
