//! fig7_selectivity_yelp — query time vs selectivity factor (0.1 %, 1 %, 10 %),
//! RecDB (FilterRecommend) vs OnTopDB, ItemCosCF and SVD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recdb_algo::Algorithm;
use recdb_bench::*;
use std::time::Duration;

fn bench_selectivity(c: &mut Criterion) {
    let algos = [Algorithm::ItemCosCF, Algorithm::Svd];
    let mut world = World::yelp(&algos);
    let n_items = world.dataset.items.len();
    let mut group = c.benchmark_group("fig7_selectivity_yelp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    for algo in algos {
        for pct in [0.1, 1.0, 10.0] {
            let items = item_subset(n_items, pct, 7);
            let sql = recdb_selectivity_sql(algo, &items);
            group.bench_function(BenchmarkId::new(format!("RecDB/{algo}"), pct), |b| {
                b.iter(|| world.run_recdb(&sql))
            });
            let osql = ontop_selectivity_sql(&items);
            group.bench_function(BenchmarkId::new(format!("OnTopDB/{algo}"), pct), |b| {
                b.iter(|| world.run_ontop(algo, &osql))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity);
criterion_main!(benches);
