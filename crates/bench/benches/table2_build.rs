//! Table II — recommender model building time: ItemCosCF / ItemPearCF /
//! SVD on MovieLens, LDOS-CoMoDa, and Yelp — plus a serial-vs-parallel
//! build-scaling group (`table2_build_threads`). Neighborhood builds are
//! bit-identical at every thread count; parallel SVD is the deterministic
//! block-partitioned variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recdb_algo::model::{RecModel, TrainConfig};
use recdb_algo::{Algorithm, RatingsMatrix};
use recdb_bench::bench_config;
use recdb_datasets::SyntheticSpec;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let specs = [
        SyntheticSpec::movielens(),
        SyntheticSpec::ldos_comoda(),
        SyntheticSpec::yelp(),
    ];
    let config: TrainConfig = bench_config().train;
    let mut group = c.benchmark_group("table2_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    for spec in &specs {
        let dataset = recdb_datasets::generate(spec);
        let ratings = dataset.algo_ratings();
        for algo in [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd] {
            group.bench_with_input(
                BenchmarkId::new(spec.name.clone(), algo),
                &algo,
                |b, &algo| {
                    b.iter(|| {
                        RecModel::train(
                            algo,
                            RatingsMatrix::from_ratings(ratings.iter().copied()),
                            &config,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// Serial vs parallel build wall time, LDOS (small, fast to sweep).
fn bench_build_threads(c: &mut Criterion) {
    let dataset = recdb_datasets::generate(&SyntheticSpec::ldos_comoda());
    let ratings = dataset.algo_ratings();
    let mut group = c.benchmark_group("table2_build_threads");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for algo in [Algorithm::ItemCosCF, Algorithm::Svd] {
        for threads in [1usize, 2, 4, 8] {
            let mut config: TrainConfig = bench_config().train;
            config.neighborhood.threads = threads;
            config.svd.threads = threads;
            group.bench_with_input(
                BenchmarkId::new(format!("{algo}"), format!("t{threads}")),
                &config,
                |b, config| {
                    b.iter(|| {
                        RecModel::train(
                            algo,
                            RatingsMatrix::from_ratings(ratings.iter().copied()),
                            config,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2, bench_build_threads);
criterion_main!(benches);
