//! fig10_topk_movielens — top-K recommendation query time (K = 10, 100), RecDB
//! (IndexRecommend over the pre-computed RecScoreIndex) vs OnTopDB,
//! three algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recdb_algo::Algorithm;
use recdb_bench::*;
use std::time::Duration;

fn bench_topk(c: &mut Criterion) {
    let algos = [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd];
    let mut world = World::movielens(&algos);
    let users = world.hot_users.clone();
    let mut group = c.benchmark_group("fig10_topk_movielens");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    for algo in algos {
        for k in [10usize, 100] {
            let sqls: Vec<String> = users.iter().map(|&u| recdb_topk_sql(algo, u, k)).collect();
            group.bench_function(BenchmarkId::new(format!("RecDB/{algo}"), k), |b| {
                let mut i = 0;
                b.iter(|| {
                    let sql = &sqls[i % sqls.len()];
                    i += 1;
                    world.run_recdb(sql)
                })
            });
            let osqls: Vec<String> = users.iter().map(|&u| ontop_topk_sql(u, k)).collect();
            group.bench_function(BenchmarkId::new(format!("OnTopDB/{algo}"), k), |b| {
                let mut i = 0;
                b.iter(|| {
                    let sql = &osqls[i % osqls.len()];
                    i += 1;
                    world.run_ontop(algo, sql)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
