//! fig8_join_movielens — join + recommendation query time (one-way and two-way
//! joins), RecDB (JoinRecommend) vs OnTopDB, three algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recdb_algo::Algorithm;
use recdb_bench::*;
use std::time::Duration;

fn bench_join(c: &mut Criterion) {
    let algos = [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd];
    let mut world = World::movielens(&algos);
    let user = world.hot_users[0];
    let mut group = c.benchmark_group("fig8_join_movielens");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    for algo in algos {
        let sql1 = recdb_join1_sql(algo, user, "Action");
        group.bench_function(BenchmarkId::new("RecDB/one-way", algo), |b| {
            b.iter(|| world.run_recdb(&sql1))
        });
        let osql1 = ontop_join1_sql(user, "Action");
        group.bench_function(BenchmarkId::new("OnTopDB/one-way", algo), |b| {
            b.iter(|| world.run_ontop(algo, &osql1))
        });
        let sql2 = recdb_join2_sql(algo, user, "Action");
        group.bench_function(BenchmarkId::new("RecDB/two-way", algo), |b| {
            b.iter(|| world.run_recdb(&sql2))
        });
        let osql2 = ontop_join2_sql(user, "Action");
        group.bench_function(BenchmarkId::new("OnTopDB/two-way", algo), |b| {
            b.iter(|| world.run_ontop(algo, &osql2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
