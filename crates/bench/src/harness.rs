//! Shared experiment scaffolding.
//!
//! A [`World`] is one §VI testbed: a dataset loaded into **two** engines —
//! a native RecDB instance (with recommenders created and, for top-k
//! experiments, hot users materialized in the RecScoreIndex) and an
//! [`OnTopDb`] baseline wired to an identical copy of the data.
//!
//! The SQL builders produce the exact query shapes of the evaluation:
//!
//! * **Selectivity** (Figs. 6–7): `RECOMMEND … WHERE iid IN (…)` with the
//!   IN-list sized to 0.1 % / 1 % / 10 % of the item universe. RecDB's
//!   FilterRecommend scores `|U| × |list|` pairs; OnTopDB always scores
//!   all `|U| × |I|` pairs and loads them back before filtering, so the
//!   gap is ∝ 1/selectivity — the paper's converge-at-10 % shape.
//! * **Join** (Figs. 8–9): paper Query 4 (one-way) and a users-table
//!   two-way variant.
//! * **Top-k** (Figs. 10–12): paper Query 1 with `LIMIT k`, served from
//!   the materialized RecScoreIndex on the RecDB side.

use recdb_algo::model::{NeighborhoodKnobs, TrainConfig};
use recdb_algo::Algorithm;
use recdb_core::{RecDb, RecDbConfig};
use recdb_datasets::{Dataset, SyntheticSpec};
use recdb_exec::ResultSet;
use recdb_ontop::{OnTopDb, PredictionScope};
use std::time::{Duration, Instant};

/// Number of users pre-materialized ("hot" users) for top-k experiments.
pub const HOT_USERS: usize = 16;

/// One dataset loaded into both systems.
pub struct World {
    /// Dataset name (movielens / ldos-comoda / yelp).
    pub name: String,
    /// The generated data.
    pub dataset: Dataset,
    /// Native RecDB with recommenders created.
    pub db: RecDb,
    /// The OnTopDB baseline over an identical copy.
    pub ontop: OnTopDb,
    /// Algorithms with recommenders/engines built.
    pub algorithms: Vec<Algorithm>,
    /// The users materialized in the RecScoreIndex (query targets).
    pub hot_users: Vec<i64>,
}

/// Training knobs used by every experiment: neighbor lists truncated to 64
/// (standard production CF practice; documented in EXPERIMENTS.md).
pub fn bench_config() -> RecDbConfig {
    RecDbConfig {
        auto_maintenance: false,
        train: TrainConfig {
            neighborhood: NeighborhoodKnobs {
                max_neighbors: Some(64),
                min_abs_sim: 0.0,
                ..Default::default()
            },
            // A production-grade SGD budget (the paper's SVD builds are
            // ~7x slower than its neighborhood builds — Table II).
            svd: recdb_algo::SvdParams {
                factors: 50,
                epochs: 120,
                ..recdb_algo::SvdParams::default()
            },
        },
        ..RecDbConfig::default()
    }
}

impl World {
    /// Build a world from a spec, creating one recommender per algorithm
    /// on both systems and materializing [`HOT_USERS`] users.
    pub fn build(spec: &SyntheticSpec, algorithms: &[Algorithm]) -> World {
        let dataset = recdb_datasets::generate(spec);

        let mut db = RecDb::with_config(bench_config());
        dataset.load_into(&mut db).expect("load native");
        for algo in algorithms {
            db.execute(&format!(
                "CREATE RECOMMENDER bench_{algo} ON ratings USERS FROM uid \
                 ITEMS FROM iid RATINGS FROM ratingval USING {algo}"
            ))
            .expect("create recommender");
        }

        // Hot users: evenly spaced user ids (deterministic, covers the
        // activity spectrum since ids are arbitrary).
        let n_users = dataset.users.len();
        let hot_users: Vec<i64> = (0..HOT_USERS.min(n_users))
            .map(|k| ((k * n_users.max(1) / HOT_USERS.max(1)) + 1) as i64)
            .collect();
        for algo in algorithms {
            let mut rec = db
                .recommender_mut(&format!("bench_{algo}"))
                .expect("recommender exists");
            for &u in &hot_users {
                rec.materialize_user(u);
            }
        }

        let mut baseline = RecDb::with_config(bench_config());
        dataset.load_into(&mut baseline).expect("load baseline");
        let mut ontop = OnTopDb::new(baseline).expect("ontop");
        for algo in algorithms {
            ontop
                .create_recommender("ratings", "uid", "iid", "ratingval", *algo)
                .expect("ontop engine");
        }

        World {
            name: spec.name.clone(),
            dataset,
            db,
            ontop,
            algorithms: algorithms.to_vec(),
            hot_users,
        }
    }

    /// The MovieLens world.
    pub fn movielens(algorithms: &[Algorithm]) -> World {
        World::build(&SyntheticSpec::movielens(), algorithms)
    }

    /// The LDOS-CoMoDa world.
    pub fn ldos(algorithms: &[Algorithm]) -> World {
        World::build(&SyntheticSpec::ldos_comoda(), algorithms)
    }

    /// The Yelp world.
    pub fn yelp(algorithms: &[Algorithm]) -> World {
        World::build(&SyntheticSpec::yelp(), algorithms)
    }

    /// A small world for harness self-tests.
    pub fn tiny(algorithms: &[Algorithm]) -> World {
        World::build(&SyntheticSpec::movielens().scaled(0.01), algorithms)
    }

    /// Run the native (RecDB) side of a query.
    pub fn run_recdb(&mut self, sql: &str) -> ResultSet {
        self.db.query(sql).expect("recdb query")
    }

    /// Run the OnTopDB side: recompute all-pairs predictions, reload the
    /// predictions table, then run the residual SQL.
    pub fn run_ontop(&mut self, algorithm: Algorithm, residual_sql: &str) -> ResultSet {
        self.ontop
            .run(
                "ratings",
                algorithm,
                PredictionScope::AllUsers,
                residual_sql,
            )
            .expect("ontop query")
    }
}

// ------------------------------------------------------------ query shapes

/// Deterministically pick `⌈pct × n_items⌉` item ids (≥ 1).
pub fn item_subset(n_items: usize, pct: f64, seed: u64) -> Vec<i64> {
    let count = ((n_items as f64 * pct / 100.0).round() as usize).clamp(1, n_items);
    // Low-discrepancy stride walk over the id space, deterministic per seed.
    let stride = (n_items / count).max(1);
    (0..count)
        .map(|k| (((seed as usize + k * stride) % n_items) + 1) as i64)
        .collect()
}

fn in_list(items: &[i64]) -> String {
    items
        .iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Figs. 6–7, RecDB side: FilterRecommend over an item subset.
pub fn recdb_selectivity_sql(algorithm: Algorithm, items: &[i64]) -> String {
    format!(
        "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING {algorithm} \
         WHERE R.iid IN ({})",
        in_list(items)
    )
}

/// Figs. 6–7, OnTopDB side: the same filter over the reloaded predictions.
pub fn ontop_selectivity_sql(items: &[i64]) -> String {
    format!(
        "SELECT P.uid, P.iid, P.ratingval FROM _ontop_predictions AS P \
         WHERE P.iid IN ({})",
        in_list(items)
    )
}

/// Figs. 8–9, RecDB side, one-way join (paper Query 4).
pub fn recdb_join1_sql(algorithm: Algorithm, user: i64, genre: &str) -> String {
    format!(
        "SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING {algorithm} \
         WHERE R.uid = {user} AND M.mid = R.iid AND M.genre = '{genre}'"
    )
}

/// Figs. 8–9, OnTopDB side, one-way join.
pub fn ontop_join1_sql(user: i64, genre: &str) -> String {
    format!(
        "SELECT P.uid, M.name, P.ratingval FROM _ontop_predictions AS P, movies AS M \
         WHERE P.uid = {user} AND M.mid = P.iid AND M.genre = '{genre}'"
    )
}

/// Figs. 8–9, RecDB side, two-way join (adds the users table).
pub fn recdb_join2_sql(algorithm: Algorithm, user: i64, genre: &str) -> String {
    format!(
        "SELECT U.name, M.name, R.ratingval FROM ratings AS R, movies AS M, users AS U \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING {algorithm} \
         WHERE R.uid = {user} AND M.mid = R.iid AND U.uid = R.uid \
         AND M.genre = '{genre}'"
    )
}

/// Figs. 8–9, OnTopDB side, two-way join.
pub fn ontop_join2_sql(user: i64, genre: &str) -> String {
    format!(
        "SELECT U.name, M.name, P.ratingval \
         FROM _ontop_predictions AS P, movies AS M, users AS U \
         WHERE P.uid = {user} AND M.mid = P.iid AND U.uid = P.uid \
         AND M.genre = '{genre}'"
    )
}

/// Figs. 10–12, RecDB side: paper Query 1 (top-k for one user).
pub fn recdb_topk_sql(algorithm: Algorithm, user: i64, k: usize) -> String {
    format!(
        "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING {algorithm} \
         WHERE R.uid = {user} ORDER BY R.ratingval DESC LIMIT {k}"
    )
}

/// Figs. 10–12, OnTopDB side: predict-all, sort, take k.
pub fn ontop_topk_sql(user: i64, k: usize) -> String {
    format!(
        "SELECT P.uid, P.iid, P.ratingval FROM _ontop_predictions AS P \
         WHERE P.uid = {user} ORDER BY P.ratingval DESC LIMIT {k}"
    )
}

// ---------------------------------------------------------------- timing

/// Median wall-clock time of `reps` runs of `f` (after one warm-up run).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let _ = f();
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let _ = f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Format a duration as seconds with engineering precision.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algos() -> Vec<Algorithm> {
        vec![Algorithm::ItemCosCF]
    }

    #[test]
    fn tiny_world_builds_and_answers() {
        let mut w = World::tiny(&algos());
        let items = item_subset(w.dataset.items.len(), 10.0, 7);
        let native = w.run_recdb(&recdb_selectivity_sql(Algorithm::ItemCosCF, &items));
        let baseline = w.run_ontop(Algorithm::ItemCosCF, &ontop_selectivity_sql(&items));
        assert_eq!(
            native.len(),
            baseline.len(),
            "both systems return the same answer cardinality"
        );
        assert!(!native.is_empty());
    }

    #[test]
    fn item_subset_sizes() {
        assert_eq!(item_subset(1682, 0.1, 0).len(), 2);
        assert_eq!(item_subset(1682, 1.0, 0).len(), 17);
        assert_eq!(item_subset(1682, 10.0, 0).len(), 168);
        assert_eq!(item_subset(10, 0.001, 0).len(), 1, "floor at one item");
        // Distinct ids in range.
        let items = item_subset(100, 10.0, 3);
        assert!(items.iter().all(|&i| (1..=100).contains(&i)));
        let mut dedup = items.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), items.len());
    }

    #[test]
    fn topk_agrees_between_index_and_ontop() {
        let mut w = World::tiny(&algos());
        let user = w.hot_users[0];
        let native = w.run_recdb(&recdb_topk_sql(Algorithm::ItemCosCF, user, 5));
        let baseline = w.run_ontop(Algorithm::ItemCosCF, &ontop_topk_sql(user, 5));
        assert_eq!(native.len(), baseline.len());
        // Score multisets agree (ties may order differently).
        let scores = |r: &ResultSet| {
            let mut v: Vec<f64> = r
                .rows()
                .iter()
                .map(|t| t.get(2).unwrap().as_f64().unwrap())
                .collect();
            v.sort_by(f64::total_cmp);
            v
        };
        let (a, b) = (scores(&native), scores(&baseline));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn join_sql_shapes_run() {
        let mut w = World::tiny(&algos());
        let user = w.hot_users[0];
        let native = w.run_recdb(&recdb_join1_sql(Algorithm::ItemCosCF, user, "Action"));
        let baseline = w.run_ontop(Algorithm::ItemCosCF, &ontop_join1_sql(user, "Action"));
        assert_eq!(native.len(), baseline.len());
        let native2 = w.run_recdb(&recdb_join2_sql(Algorithm::ItemCosCF, user, "Action"));
        let baseline2 = w.run_ontop(Algorithm::ItemCosCF, &ontop_join2_sql(user, "Action"));
        assert_eq!(native2.len(), baseline2.len());
    }

    #[test]
    fn time_median_is_positive() {
        let d = time_median(3, || std::hint::black_box(1 + 1));
        assert!(d >= Duration::ZERO);
        assert!(secs(Duration::from_millis(5)).contains("ms"));
        assert!(secs(Duration::from_secs(2)).contains('s'));
        assert!(secs(Duration::from_micros(12)).contains("us"));
    }
}
