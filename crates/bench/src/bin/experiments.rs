//! The one-shot experiment harness: regenerates every table and figure of
//! the paper's evaluation (§VI) and prints the same rows/series the paper
//! reports.
//!
//! ```text
//! experiments [table2|build|score|pool|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablations|all]
//! ```
//!
//! `build` measures serial-vs-parallel model-build wall time and writes
//! the machine-readable `BENCH_build.json` at the repository root;
//! `score` measures per-pair vs batched materialization scoring
//! throughput and writes `BENCH_score.json` next to it; `pool` measures
//! mixed-query throughput against the same engine squeezed into
//! progressively smaller buffer pools and writes `BENCH_pool.json`.
//!
//! Absolute numbers will differ from the paper (the substrate is this
//! repository's storage engine, not PostgreSQL 9.2 on the authors'
//! testbed); the *shapes* — who wins, by roughly what factor, where the
//! gap narrows — are the reproduction target. EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use recdb_algo::model::{RecModel, TrainConfig};
use recdb_algo::{Algorithm, RatingsMatrix};
use recdb_bench::*;
use recdb_datasets::SyntheticSpec;
use std::time::Duration;

const REPS: usize = 3;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let run_all = arg == "all";
    let mut ran = false;
    if run_all || arg == "table2" {
        table2();
        ran = true;
    }
    if run_all || arg == "build" {
        build_scaling();
        ran = true;
    }
    if run_all || arg == "score" {
        score_sweep();
        ran = true;
    }
    if run_all || arg == "pool" {
        pool_sweep();
        ran = true;
    }
    if run_all || arg == "fig6" {
        selectivity_figure("Fig 6", &SyntheticSpec::movielens());
        ran = true;
    }
    if run_all || arg == "fig7" {
        selectivity_figure("Fig 7", &SyntheticSpec::yelp());
        ran = true;
    }
    if run_all || arg == "fig8" {
        join_figure("Fig 8", &SyntheticSpec::movielens());
        ran = true;
    }
    if run_all || arg == "fig9" {
        join_figure("Fig 9", &SyntheticSpec::ldos_comoda());
        ran = true;
    }
    if run_all || arg == "fig10" {
        topk_figure("Fig 10", &SyntheticSpec::movielens());
        ran = true;
    }
    if run_all || arg == "fig11" {
        topk_figure("Fig 11", &SyntheticSpec::ldos_comoda());
        ran = true;
    }
    if run_all || arg == "fig12" {
        topk_figure("Fig 12", &SyntheticSpec::yelp());
        ran = true;
    }
    if run_all || arg == "ablations" {
        ablation_neighbors();
        ablation_hotness();
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown experiment `{arg}`; expected table2, build, score, \
             pool, fig6..fig12, ablations, or all"
        );
        std::process::exit(2);
    }
}

fn header(title: &str, note: &str) {
    println!("\n=== {title} ===");
    println!("--- {note}");
}

/// Table II: model build time per algorithm per dataset.
fn table2() {
    header(
        "Table II: recommender model building time",
        "paper (PostgreSQL 9.2): ML 2.24/2.12/15.62s, LDOS 0.17/0.07/0.4s, \
         Yelp 6.26/8.03/32.01s — expect SVD slowest, LDOS fastest",
    );
    let config: TrainConfig = bench_config().train;
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "dataset", "ItemCosCF", "ItemPearCF", "SVD"
    );
    for spec in [
        SyntheticSpec::movielens(),
        SyntheticSpec::ldos_comoda(),
        SyntheticSpec::yelp(),
    ] {
        let dataset = recdb_datasets::generate(&spec);
        let ratings = dataset.algo_ratings();
        let mut cells = Vec::new();
        for algo in [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd] {
            let t = time_median(REPS, || {
                RecModel::train(
                    algo,
                    RatingsMatrix::from_ratings(ratings.iter().copied()),
                    &config,
                )
            });
            cells.push(secs(t));
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            spec.name, cells[0], cells[1], cells[2]
        );
    }
}

/// Serial-vs-parallel model build scaling, plus the `BENCH_build.json`
/// artifact (dataset, threads, build_ms, speedup per row).
fn build_scaling() {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    header(
        "Build scaling: model build wall time vs threads",
        "neighborhood builds are bit-identical at every thread count; \
         SVD >1 thread is the deterministic block-partitioned variant",
    );
    println!("host parallelism: {host_threads} (speedups are bounded by this)");
    println!(
        "{:<14} {:<11} {:>8} {:>12} {:>9}",
        "dataset", "algo", "threads", "build", "speedup"
    );
    let thread_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for spec in [
        SyntheticSpec::ldos_comoda(),
        SyntheticSpec::movielens(),
        SyntheticSpec::yelp(),
    ] {
        let dataset = recdb_datasets::generate(&spec);
        let ratings = dataset.algo_ratings();
        for algo in [Algorithm::ItemCosCF, Algorithm::Svd] {
            let mut serial_ms = 0.0;
            for &threads in &thread_counts {
                let mut config: TrainConfig = bench_config().train;
                config.neighborhood.threads = threads;
                config.svd.threads = threads;
                let t = time_median(REPS, || {
                    RecModel::train(
                        algo,
                        RatingsMatrix::from_ratings(ratings.iter().copied()),
                        &config,
                    )
                });
                let ms = t.as_secs_f64() * 1e3;
                if threads == 1 {
                    serial_ms = ms;
                }
                let speedup = serial_ms / ms.max(1e-9);
                println!(
                    "{:<14} {:<11} {:>8} {:>12} {:>8.2}x",
                    spec.name,
                    algo.to_string(),
                    threads,
                    secs(t),
                    speedup
                );
                rows.push(format!(
                    "    {{\"dataset\": \"{}\", \"algo\": \"{}\", \"threads\": {}, \
                     \"build_ms\": {:.3}, \"speedup\": {:.3}, \
                     \"impl\": \"csr-blocked\"}}",
                    spec.name, algo, threads, ms, speedup
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"model_build_scaling\",\n  \"host_threads\": {},\n  \
         \"reps\": {},\n  \"note\": \"speedup = serial build_ms / build_ms at this \
         thread count, measured on this host\",\n  \"results\": [\n{}\n  ]\n}}\n",
        host_threads,
        REPS,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_build.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Per-pair vs batched materialization scoring throughput on MovieLens
/// SVD, plus the `BENCH_score.json` artifact. The per-pair path is the
/// legacy materialization loop (id lookups + one `predict` per item); the
/// batched path resolves the user index once and scores 256-item blocks
/// through the flat-f32 `score_block` kernel.
fn score_sweep() {
    header(
        "Score batching: per-pair vs batched materialization throughput",
        "both paths score every unseen (user, item) pair for a user sample \
         with the same SVD model; identical scores, different loop shape",
    );
    let spec = SyntheticSpec::movielens();
    let dataset = recdb_datasets::generate(&spec);
    let ratings = dataset.algo_ratings();
    let config: TrainConfig = bench_config().train;
    let model = RecModel::train(
        Algorithm::Svd,
        RatingsMatrix::from_ratings(ratings.iter().copied()),
        &config,
    );
    let matrix = model.matrix();
    const SAMPLE_USERS: usize = 200;
    let users: Vec<i64> = matrix
        .user_ids()
        .iter()
        .copied()
        .take(SAMPLE_USERS)
        .collect();
    let pairs: usize = users
        .iter()
        .map(|&user| {
            let u = matrix.user_idx(user).expect("sampled from user_ids");
            matrix.n_items() - matrix.user_csr().row(u).0.len()
        })
        .sum();

    let t_pair = time_median(REPS, || {
        let mut acc = 0.0;
        for &user in &users {
            for &item in matrix.item_ids() {
                if matrix.rating_of(user, item).is_none() {
                    acc += model.predict(user, item).unwrap_or(0.0);
                }
            }
        }
        acc
    });
    let t_batch = time_median(REPS, || {
        let mut acc = 0.0;
        let mut buf = Vec::new();
        for &user in &users {
            let u = matrix.user_idx(user).expect("sampled from user_ids");
            buf.clear();
            model.score_unseen_into(u, &mut buf);
            acc += buf.iter().map(|&(_, s)| s).sum::<f64>();
        }
        acc
    });

    let pps = |t: Duration| pairs as f64 / t.as_secs_f64().max(1e-12);
    let speedup = pps(t_batch) / pps(t_pair).max(1e-12);
    println!(
        "{:<10} {:>10} {:>12} {:>16}",
        "path", "pairs", "time", "pairs/sec"
    );
    println!(
        "{:<10} {:>10} {:>12} {:>16.0}",
        "per-pair",
        pairs,
        secs(t_pair),
        pps(t_pair)
    );
    println!(
        "{:<10} {:>10} {:>12} {:>16.0}",
        "batched",
        pairs,
        secs(t_batch),
        pps(t_batch)
    );
    println!("batched speedup: {speedup:.2}x");

    let json = format!(
        "{{\n  \"experiment\": \"score_batching\",\n  \"dataset\": \"{}\",\n  \
         \"algo\": \"SVD\",\n  \"impl\": \"csr-blocked\",\n  \"factors\": {},\n  \
         \"sampled_users\": {},\n  \"pairs\": {},\n  \"reps\": {},\n  \
         \"note\": \"pairs/sec over every unseen (user, item) pair for the \
         sampled users; per_pair is the legacy id-lookup loop, batched is \
         score_block materialization\",\n  \"results\": [\n    \
         {{\"path\": \"per_pair\", \"elapsed_ms\": {:.3}, \"pairs_per_sec\": {:.0}}},\n    \
         {{\"path\": \"batched\", \"elapsed_ms\": {:.3}, \"pairs_per_sec\": {:.0}}}\n  ],\n  \
         \"batched_speedup\": {:.3}\n}}\n",
        spec.name,
        config.svd.factors,
        users.len(),
        pairs,
        REPS,
        t_pair.as_secs_f64() * 1e3,
        pps(t_pair),
        t_batch.as_secs_f64() * 1e3,
        pps(t_batch),
        speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_score.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Mixed-query throughput vs buffer-pool size, plus the
/// `BENCH_pool.json` artifact. One engine per pool size runs the same
/// workload — point SELECTs, a range filter, and IndexRecommend top-10 —
/// over a multi-hundred-page ratings table; the sweep shows where the
/// working set stops fitting and misses start to dominate.
fn pool_sweep() {
    use recdb_core::{RecDb, RecDbConfig};
    header(
        "Buffer pool: query throughput vs pool size (frames)",
        "identical workload and answers at every size; only residency \
         changes — see docs/STORAGE.md for the sizing guide",
    );
    let (users, items) = (250i64, 140i64);
    let queries_per_rep = 120usize;
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>12}",
        "frames", "queries/sec", "hit rate", "evictions", "heap pages"
    );
    let mut rows = Vec::new();
    for &frames in &[8usize, 32, 128, 512, usize::MAX] {
        let db = RecDb::with_config(RecDbConfig {
            buffer_pool_pages: frames,
            ..RecDbConfig::default()
        });
        db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
            .expect("create table");
        let mut chunk = Vec::new();
        for u in 0..users {
            for i in 0..items {
                if (u + i) % 4 == 0 {
                    continue;
                }
                let val = f64::from(((u * 7 + i * 3) % 9 + 1) as i32) / 2.0;
                chunk.push(format!("({u}, {i}, {val})"));
                if chunk.len() == 500 {
                    db.execute(&format!("INSERT INTO ratings VALUES {}", chunk.join(", ")))
                        .expect("insert");
                    chunk.clear();
                }
            }
        }
        if !chunk.is_empty() {
            db.execute(&format!("INSERT INTO ratings VALUES {}", chunk.join(", ")))
                .expect("insert");
        }
        db.execute(
            "CREATE RECOMMENDER PoolRec ON ratings USERS FROM uid \
             ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
        )
        .expect("create recommender");
        db.materialize("PoolRec").expect("materialize");
        let heap_pages = db
            .catalog()
            .table("ratings")
            .expect("ratings table")
            .heap()
            .page_count();

        let pool = db.buffer_pool();
        // Warm once so every size starts from its steady-state residency.
        let battery = |rep: usize| {
            for q in 0..queries_per_rep {
                let uid = ((q * 17 + rep * 7) as i64) % users;
                let sql = match q % 3 {
                    0 => format!("SELECT uid, iid, ratingval FROM ratings WHERE uid = {uid}"),
                    1 => format!(
                        "SELECT uid, iid FROM ratings WHERE ratingval > 4.0 AND iid < {}",
                        (q % 20) + 5
                    ),
                    _ => format!(
                        "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                         WHERE R.uid = {uid} ORDER BY R.ratingval DESC LIMIT 10"
                    ),
                };
                db.query(&sql).expect("query");
            }
        };
        battery(0);
        let (h0, m0, e0) = (pool.hits(), pool.misses(), pool.evictions());
        let t = time_median(REPS, || battery(1));
        let accesses = (pool.hits() - h0) + (pool.misses() - m0);
        let hit_rate = if accesses == 0 {
            1.0
        } else {
            (pool.hits() - h0) as f64 / accesses as f64
        };
        let evictions = pool.evictions() - e0;
        let qps = queries_per_rep as f64 / t.as_secs_f64().max(1e-12);
        let label = if frames == usize::MAX {
            "unbounded".to_owned()
        } else {
            frames.to_string()
        };
        println!(
            "{label:<10} {qps:>12.0} {:>13.1}% {evictions:>10} {heap_pages:>12}",
            hit_rate * 100.0
        );
        rows.push(format!(
            "    {{\"frames\": {}, \"queries_per_sec\": {:.0}, \
             \"hit_rate\": {:.4}, \"evictions\": {}, \"heap_pages\": {}}}",
            if frames == usize::MAX { 0 } else { frames },
            qps,
            hit_rate,
            evictions,
            heap_pages
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"buffer_pool_sweep\",\n  \"reps\": {REPS},\n  \
         \"queries_per_rep\": {queries_per_rep},\n  \
         \"note\": \"mixed point-select / range-filter / IndexRecommend \
         workload over a {users}x{items}-pair ratings world; frames = 0 \
         means unbounded; hit_rate and evictions are deltas over the \
         measured reps only (post warm-up)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Figs. 6–7: query time vs selectivity factor.
fn selectivity_figure(figure: &str, spec: &SyntheticSpec) {
    header(
        &format!(
            "{figure}: query time vs selectivity ({}, RecDB vs OnTopDB)",
            spec.name
        ),
        "paper shape: RecDB wins by ~2 orders of magnitude at 0.1%, \
         gap narrows toward 10% (RecDB time ∝ selectivity, OnTopDB flat)",
    );
    let algos = [Algorithm::ItemCosCF, Algorithm::Svd];
    let mut world = World::build(spec, &algos);
    let n_items = world.dataset.items.len();
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>9}",
        "algo", "selectivity", "RecDB", "OnTopDB", "speedup"
    );
    for algo in algos {
        for pct in [0.1, 1.0, 10.0] {
            let items = item_subset(n_items, pct, 7);
            let sql = recdb_selectivity_sql(algo, &items);
            let t_rec = time_median(REPS, || world.run_recdb(&sql));
            let osql = ontop_selectivity_sql(&items);
            let t_on = time_median(REPS, || world.run_ontop(algo, &osql));
            println!(
                "{:<11} {:>11}% {:>12} {:>12} {:>8.1}x",
                algo.to_string(),
                pct,
                secs(t_rec),
                secs(t_on),
                ratio(t_on, t_rec)
            );
        }
    }
}

/// Figs. 8–9: join + recommendation query time.
fn join_figure(figure: &str, spec: &SyntheticSpec) {
    header(
        &format!(
            "{figure}: join query time ({}, RecDB vs OnTopDB)",
            spec.name
        ),
        "paper shape: RecDB up to 2 orders of magnitude faster; the gain \
         persists for two-way joins (JoinRecommend scores only joined tuples)",
    );
    let algos = [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd];
    let mut world = World::build(spec, &algos);
    let user = world.hot_users[0];
    println!(
        "{:<11} {:<9} {:>12} {:>12} {:>9}",
        "algo", "join", "RecDB", "OnTopDB", "speedup"
    );
    for algo in algos {
        let sql1 = recdb_join1_sql(algo, user, "Action");
        let t_rec1 = time_median(REPS, || world.run_recdb(&sql1));
        let osql1 = ontop_join1_sql(user, "Action");
        let t_on1 = time_median(REPS, || world.run_ontop(algo, &osql1));
        println!(
            "{:<11} {:<9} {:>12} {:>12} {:>8.1}x",
            algo.to_string(),
            "one-way",
            secs(t_rec1),
            secs(t_on1),
            ratio(t_on1, t_rec1)
        );
        let sql2 = recdb_join2_sql(algo, user, "Action");
        let t_rec2 = time_median(REPS, || world.run_recdb(&sql2));
        let osql2 = ontop_join2_sql(user, "Action");
        let t_on2 = time_median(REPS, || world.run_ontop(algo, &osql2));
        println!(
            "{:<11} {:<9} {:>12} {:>12} {:>8.1}x",
            algo.to_string(),
            "two-way",
            secs(t_rec2),
            secs(t_on2),
            ratio(t_on2, t_rec2)
        );
    }
}

/// Figs. 10–12: top-K recommendation query time.
fn topk_figure(figure: &str, spec: &SyntheticSpec) {
    header(
        &format!(
            "{figure}: top-K query time ({}, RecDB vs OnTopDB)",
            spec.name
        ),
        "paper shape: RecDB ~2 orders of magnitude faster via the \
         pre-computed RecScoreIndex; roughly flat in K",
    );
    let algos = [Algorithm::ItemCosCF, Algorithm::ItemPearCF, Algorithm::Svd];
    let mut world = World::build(spec, &algos);
    let users = world.hot_users.clone();
    println!(
        "{:<11} {:>5} {:>12} {:>12} {:>9}",
        "algo", "K", "RecDB", "OnTopDB", "speedup"
    );
    for algo in algos {
        for k in [10usize, 100] {
            let mut i = 0;
            let t_rec = time_median(REPS * users.len(), || {
                let u = users[i % users.len()];
                i += 1;
                world.run_recdb(&recdb_topk_sql(algo, u, k))
            });
            let mut j = 0;
            let t_on = time_median(REPS, || {
                let u = users[j % users.len()];
                j += 1;
                world.run_ontop(algo, &ontop_topk_sql(u, k))
            });
            println!(
                "{:<11} {:>5} {:>12} {:>12} {:>8.1}x",
                algo.to_string(),
                k,
                secs(t_rec),
                secs(t_on),
                ratio(t_on, t_rec)
            );
        }
    }
}

/// Ablation: neighborhood truncation size vs build time and query time.
fn ablation_neighbors() {
    header(
        "Ablation: neighbor-list truncation (quarter-scale MovieLens)",
        "larger lists cost more to store and predict over; accuracy knob",
    );
    let spec = SyntheticSpec::movielens().scaled(0.25);
    let dataset = recdb_datasets::generate(&spec);
    let ratings = dataset.algo_ratings();
    println!(
        "{:<14} {:>12} {:>14} {:>16}",
        "max_neighbors", "build", "model pairs", "predict 1 user"
    );
    for max in [Some(8usize), Some(32), Some(128), None] {
        let mut config = TrainConfig::default();
        config.neighborhood.max_neighbors = max;
        let build = time_median(REPS, || {
            RecModel::train(
                Algorithm::ItemCosCF,
                RatingsMatrix::from_ratings(ratings.iter().copied()),
                &config,
            )
        });
        let model = RecModel::train(
            Algorithm::ItemCosCF,
            RatingsMatrix::from_ratings(ratings.iter().copied()),
            &config,
        );
        let pairs = match &model {
            RecModel::Item(m) => m.neighborhood().total_pairs(),
            _ => 0,
        };
        let items: Vec<i64> = model.matrix().item_ids().to_vec();
        let predict = time_median(REPS, || {
            items.iter().map(|&i| model.score(1, i)).sum::<f64>()
        });
        println!(
            "{:<14} {:>12} {:>14} {:>16}",
            max.map(|m| m.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            secs(build),
            pairs,
            secs(predict)
        );
    }
}

/// Ablation: HOTNESS-THRESHOLD vs materialized entries (Algorithm 4).
fn ablation_hotness() {
    header(
        "Ablation: HOTNESS-THRESHOLD sweep (Algorithm 4, quarter-scale MovieLens)",
        "threshold 0 materializes every touched pair, 1 almost nothing \
         (query-latency vs storage/maintenance trade-off, §IV-D)",
    );
    let spec = SyntheticSpec::movielens().scaled(0.25);
    println!(
        "{:<11} {:>20} {:>14}",
        "threshold", "materialized pairs", "evicted pairs"
    );
    for threshold in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut db = recdb_core::RecDb::with_config(recdb_core::RecDbConfig {
            hotness_threshold: threshold,
            auto_maintenance: false,
            ..recdb_core::RecDbConfig::default()
        });
        let dataset = recdb_datasets::generate(&spec);
        dataset.load_into(&mut db).unwrap();
        db.execute(
            "CREATE RECOMMENDER hot ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        // Graded workload: user u issues (21 − u) queries, tail item j
        // receives (10 − j) new ratings — so hotness ratios spread over
        // (0, 1] and the threshold actually discriminates.
        let n_items = dataset.items.len() as i64;
        for user in 1..=20i64 {
            for _ in 0..(21 - user) {
                db.query(&format!(
                    "SELECT R.iid FROM ratings AS R \
                     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                     WHERE R.uid = {user} LIMIT 1"
                ))
                .unwrap();
            }
        }
        for j in 0..10i64 {
            let item = n_items - 10 + j;
            for k in 0..(10 - j) {
                db.execute(&format!(
                    "INSERT INTO ratings VALUES ({}, {item}, 3.0)",
                    100_000 + j * 100 + k
                ))
                .unwrap();
            }
        }
        let decision = db.run_cache_manager("hot").unwrap();
        let entries = db.recommender("hot").unwrap().materialized_entries();
        println!(
            "{:<11} {:>20} {:>14}",
            threshold,
            entries,
            decision.evicted.len()
        );
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-12)
}
