//! # recdb-bench
//!
//! Shared scaffolding for the benchmark harness that regenerates every
//! table and figure of the paper's evaluation (§VI). See `src/bin/
//! experiments.rs` for the one-shot harness and `benches/` for the
//! Criterion benches.

pub mod harness;

pub use harness::*;
