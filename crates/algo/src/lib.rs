//! # recdb-algo
//!
//! The recommendation algorithms of the RecDB paper (ICDE 2017 §II–§IV):
//!
//! * [`ratings::RatingsMatrix`] — sparse user/item ratings with row and
//!   column views (the "UserVector" / "ItemVector" tables of Algorithm 1),
//! * [`similarity`] — cosine and Pearson correlation over co-rated
//!   dimensions (Eq. 1),
//! * [`neighborhood`] — item–item and user–user similarity-list models,
//! * [`itemcf`] / [`usercf`] — neighborhood predictors (Eq. 2),
//! * [`svd`] — regularized gradient-descent matrix factorization (Eq. 3),
//! * [`kernels`] — flat-`f32` vectorizable primitives (`dot`, `axpy`,
//!   `score_block`) shared by the SVD trainer and the score materializer,
//! * [`popularity`] — the non-personalized class of the §II taxonomy
//!   (damped-mean item ranking; also the cold-start fallback),
//! * [`model`] — the [`model::RecModel`] wrapper + [`model::Algorithm`]
//!   names used in SQL (`USING ItemCosCF`, …),
//! * [`eval`] — RMSE / MAE hold-out evaluation (an extension; the paper
//!   reports performance only, but a credible release needs accuracy
//!   checks to show the predictors are implemented correctly),
//! * [`parallel`] / [`topk`] — scoped-thread scheduling and stable bounded
//!   top-k selection shared by the model builders and the executor.

pub mod eval;
pub mod itemcf;
pub mod kernels;
pub mod model;
pub mod neighborhood;
pub mod parallel;
pub mod popularity;
pub mod ratings;
pub mod similarity;
pub mod svd;
pub mod topk;
pub mod usercf;

pub use itemcf::ItemCfModel;
pub use model::{Algorithm, RecModel, TrainError};
pub use neighborhood::NeighborhoodParams;
pub use parallel::effective_threads;
pub use popularity::PopularityModel;
pub use ratings::{Csr, Rating, RatingsMatrix};
pub use similarity::Similarity;
pub use svd::{SvdModel, SvdParams};
pub use topk::top_k_by;
pub use usercf::UserCfModel;
