//! Stable bounded top-k selection.
//!
//! Model building and query execution both end with "keep the best `k` of
//! `n` rows" (neighbor-list truncation, `ORDER BY … LIMIT k`). Fully
//! sorting costs `O(n log n)`; [`top_k_by`] does the same selection with a
//! bounded binary heap in `O(n log k)` time and `O(k)` space, while
//! reproducing a *stable* sort's tie-break exactly — so swapping it in for
//! `sort_by` + `truncate` never changes results, only speed.

use std::cmp::Ordering;

/// Return the `k` smallest elements under `cmp` in sorted order — exactly
/// what stable `sort_by(cmp)` followed by `truncate(k)` produces, in
/// `O(n log k)`.
///
/// Stability: among `cmp`-equal elements, earlier arrivals win the last
/// slots and keep their input order in the output, matching a stable sort.
pub fn top_k_by<T, F>(items: impl IntoIterator<Item = T>, k: usize, mut cmp: F) -> Vec<T>
where
    F: FnMut(&T, &T) -> Ordering,
{
    if k == 0 {
        return Vec::new();
    }
    // Max-heap of the current best `k` under (cmp, arrival index); the
    // root is the worst kept element. Carrying the arrival index makes the
    // order total, which is what gives the stable-sort-equivalent
    // tie-break: a later arrival that `cmp`-ties the root compares
    // Greater, so it does not displace it.
    // `k` is caller-controlled (a SQL `LIMIT` can be u64::MAX); cap the
    // up-front reservation and let the heap grow to min(k, n) naturally.
    let mut heap: Vec<(T, usize)> = Vec::with_capacity(k.min(1024));
    for (seq, item) in items.into_iter().enumerate() {
        if heap.len() < k {
            heap.push((item, seq));
            let mut child = heap.len() - 1;
            while child > 0 {
                let parent = (child - 1) / 2;
                if total(&mut cmp, &heap[child], &heap[parent]) == Ordering::Greater {
                    heap.swap(child, parent);
                    child = parent;
                } else {
                    break;
                }
            }
        } else {
            let cand = (item, seq);
            if total(&mut cmp, &cand, &heap[0]) == Ordering::Less {
                heap[0] = cand;
                let mut parent = 0;
                loop {
                    let left = 2 * parent + 1;
                    if left >= heap.len() {
                        break;
                    }
                    let right = left + 1;
                    let big = if right < heap.len()
                        && total(&mut cmp, &heap[right], &heap[left]) == Ordering::Greater
                    {
                        right
                    } else {
                        left
                    };
                    if total(&mut cmp, &heap[big], &heap[parent]) == Ordering::Greater {
                        heap.swap(big, parent);
                        parent = big;
                    } else {
                        break;
                    }
                }
            }
        }
    }
    heap.sort_by(|a, b| total(&mut cmp, a, b));
    heap.into_iter().map(|(t, _)| t).collect()
}

fn total<T, F>(cmp: &mut F, a: &(T, usize), b: &(T, usize)) -> Ordering
where
    F: FnMut(&T, &T) -> Ordering,
{
    cmp(&a.0, &b.0).then(a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: stable sort + truncate.
    fn reference(items: &[(u64, usize)], k: usize) -> Vec<(u64, usize)> {
        let mut v = items.to_vec();
        v.sort_by_key(|a| a.0);
        v.truncate(k);
        v
    }

    fn lcg_stream(seed: u64, n: usize, modulo: u64) -> Vec<(u64, usize)> {
        let mut s = seed;
        (0..n)
            .map(|id| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) % modulo, id)
            })
            .collect()
    }

    #[test]
    fn matches_stable_sort_truncate() {
        for seed in 0..20u64 {
            // Small modulo forces many duplicate keys, exercising the
            // stability tie-break.
            let items = lcg_stream(seed, 200, 13);
            for k in [0, 1, 2, 7, 50, 199, 200, 500] {
                let got = top_k_by(items.iter().copied(), k, |a, b| a.0.cmp(&b.0));
                assert_eq!(got, reference(&items, k), "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn equal_keys_keep_input_order() {
        let items: Vec<(u64, usize)> = (0..10).map(|id| (7, id)).collect();
        let got = top_k_by(items.iter().copied(), 4, |a, b| a.0.cmp(&b.0));
        assert_eq!(got, vec![(7, 0), (7, 1), (7, 2), (7, 3)]);
    }

    #[test]
    fn empty_input_and_zero_k() {
        let empty: Vec<(u64, usize)> = Vec::new();
        assert!(top_k_by(empty.iter().copied(), 5, |a, b| a.cmp(b)).is_empty());
        let items = lcg_stream(1, 10, 100);
        assert!(top_k_by(items.iter().copied(), 0, |a, b| a.0.cmp(&b.0)).is_empty());
    }

    #[test]
    fn works_with_descending_comparator() {
        let items = lcg_stream(3, 100, 1000);
        let got = top_k_by(items.iter().copied(), 5, |a, b| b.0.cmp(&a.0));
        let mut want = items.clone();
        want.sort_by_key(|a| std::cmp::Reverse(a.0));
        want.truncate(5);
        assert_eq!(got, want);
    }
}
