//! Non-personalized (popularity) recommendation — the first class of the
//! paper's §II algorithm taxonomy: "this class of algorithms leverages
//! statistics and/or summary information to recommend the same interesting
//! (e.g., the most highly rated) items to all users".
//!
//! The score of an item is its **damped mean rating**
//!
//! ```text
//! score(i) = (Σ r_{u,i} + k · μ) / (n_i + k)
//! ```
//!
//! where `μ` is the global mean and `k` damps items with few ratings
//! toward it (the classic Bayesian-average ranking, e.g. IMDb's Top 250).
//! Every user receives the same ranking over their unseen items — which is
//! also the standard cold-start fallback when a CF model has no signal.

use crate::ratings::RatingsMatrix;

/// Damping strength: an item needs this many ratings before its own mean
/// dominates the global mean.
pub const DEFAULT_DAMPING: f64 = 5.0;

/// A non-personalized popularity model.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    matrix: RatingsMatrix,
    /// Damped mean per dense item index.
    item_scores: Vec<f64>,
    global_mean: f64,
    damping: f64,
}

impl PopularityModel {
    /// Train with the default damping.
    pub fn train(matrix: RatingsMatrix) -> Self {
        PopularityModel::train_with_damping(matrix, DEFAULT_DAMPING)
    }

    /// Train with explicit damping `k ≥ 0`.
    pub fn train_with_damping(matrix: RatingsMatrix, damping: f64) -> Self {
        assert!(damping >= 0.0, "damping must be non-negative");
        let global_mean = matrix.global_mean();
        let item_scores = (0..matrix.n_items())
            .map(|i| {
                let col = matrix.item_col(i);
                let sum: f64 = col.iter().map(|&(_, r)| r).sum();
                let n = col.len() as f64;
                if n + damping == 0.0 {
                    0.0
                } else {
                    (sum + damping * global_mean) / (n + damping)
                }
            })
            .collect();
        PopularityModel {
            matrix,
            item_scores,
            global_mean,
            damping,
        }
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// The global mean rating.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// The damping constant.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Number of ratings the model was built from.
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// The damped mean score of an item by dense index.
    pub fn item_score(&self, item_idx: usize) -> f64 {
        self.item_scores[item_idx]
    }

    /// Operator-facing score: rated pairs echo the stored rating, unknown
    /// ids score 0, unseen items get the item's damped mean (identical for
    /// every user).
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item)) else {
            return 0.0;
        };
        self.score_indexed(u, i)
    }

    /// [`score`](Self::score) for already-resolved dense indexes (skips
    /// the two HashMap id lookups on hot paths).
    pub fn score_indexed(&self, u: usize, i: usize) -> f64 {
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.item_scores[i]
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        self.predict_indexed(u, i)
    }

    /// [`predict`](Self::predict) for already-resolved dense indexes.
    pub fn predict_indexed(&self, u: usize, i: usize) -> Option<f64> {
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        Some(self.item_scores[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn matrix() -> RatingsMatrix {
        RatingsMatrix::from_ratings(vec![
            // Item 1: two high ratings. Item 2: one low. Item 3: many mid.
            Rating::new(1, 1, 5.0),
            Rating::new(2, 1, 5.0),
            Rating::new(1, 2, 1.0),
            Rating::new(2, 3, 3.0),
            Rating::new(3, 3, 3.0),
            Rating::new(4, 3, 3.0),
            Rating::new(5, 3, 3.0),
        ])
    }

    #[test]
    fn damped_mean_pulls_sparse_items_toward_global_mean() {
        let m = PopularityModel::train_with_damping(matrix(), 5.0);
        let mu = m.global_mean();
        let i1 = m.matrix().item_idx(1).unwrap();
        let i2 = m.matrix().item_idx(2).unwrap();
        // Item 1's raw mean is 5.0, but with 2 ratings and k=5 the damped
        // score sits between μ and 5.
        assert!(m.item_score(i1) > mu && m.item_score(i1) < 5.0);
        // Item 2's raw mean is 1.0; damped score sits between 1 and μ.
        assert!(m.item_score(i2) > 1.0 && m.item_score(i2) < mu);
    }

    #[test]
    fn zero_damping_is_plain_mean() {
        let m = PopularityModel::train_with_damping(matrix(), 0.0);
        let i1 = m.matrix().item_idx(1).unwrap();
        let i3 = m.matrix().item_idx(3).unwrap();
        assert_eq!(m.item_score(i1), 5.0);
        assert_eq!(m.item_score(i3), 3.0);
    }

    #[test]
    fn same_ranking_for_every_user() {
        let m = PopularityModel::train(matrix());
        // Users 4 and 5 both have items 1 and 2 unseen; scores identical.
        assert_eq!(m.predict(4, 1), m.predict(5, 1));
        assert_eq!(m.predict(4, 2), m.predict(5, 2));
    }

    #[test]
    fn rated_pairs_echo_and_unknowns_zero() {
        let m = PopularityModel::train(matrix());
        assert_eq!(m.score(1, 1), 5.0);
        assert_eq!(m.predict(1, 1), None);
        assert_eq!(m.score(99, 1), 0.0);
        assert_eq!(m.score(1, 99), 0.0);
    }

    #[test]
    fn well_rated_item_ranks_above_poorly_rated() {
        let m = PopularityModel::train(matrix());
        // For user 5 (rated only item 3): item 1 (two 5s) must outrank
        // item 2 (one 1).
        assert!(m.predict(5, 1).unwrap() > m.predict(5, 2).unwrap());
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = PopularityModel::train(RatingsMatrix::default());
        assert_eq!(m.score(1, 1), 0.0);
        assert_eq!(m.global_mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_damping_rejected() {
        let _ = PopularityModel::train_with_damping(matrix(), -1.0);
    }
}
