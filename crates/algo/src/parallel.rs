//! Scoped-thread helpers for the parallel model builders.
//!
//! Every `threads` knob in this workspace follows one convention: `0`
//! means "use [`std::thread::available_parallelism`]", any other value is
//! taken literally. [`for_each_chunk`] is the shared work-stealing loop:
//! dynamic chunk scheduling over an index range, with per-worker state so
//! workers never contend on shared output. Because chunk→worker assignment
//! depends on timing, callers must merge worker results in an
//! order-insensitive way (see `neighborhood::build_pairwise` for the
//! canonicalization argument).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `threads` knob: `0` → available parallelism, otherwise the
/// requested count.
pub fn effective_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process `0..n` in `chunk`-sized ranges spread dynamically over
/// `threads` workers. Each worker owns a `W` produced by `init`; all
/// worker states are returned (in worker order, which carries no
/// information — the range→worker assignment is nondeterministic, so the
/// caller's merge must be order-insensitive).
///
/// `threads <= 1` (or `n <= 1`) runs inline on the calling thread with no
/// spawns, so the serial path has zero threading overhead.
pub fn for_each_chunk<W, I, F>(n: usize, threads: usize, chunk: usize, init: I, work: F) -> Vec<W>
where
    W: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, Range<usize>) + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    let chunk = chunk.max(1);
    if threads == 1 {
        let mut w = init();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            work(&mut w, start..end);
            start = end;
        }
        return vec![w];
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut w = init();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        work(&mut w, start..end);
                    }
                    w
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("model-build worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(
            effective_threads(0),
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 5, 16] {
            for n in [0, 1, 7, 100] {
                let worker_seen = for_each_chunk(n, threads, 3, Vec::new, |seen, range| {
                    seen.extend(range);
                });
                let mut all: Vec<usize> = worker_seen.into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "t={threads} n={n}");
            }
        }
    }

    #[test]
    fn serial_path_runs_inline_in_chunk_order() {
        let out = for_each_chunk(10, 1, 4, Vec::new, |v, range| v.push(range));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = for_each_chunk(2, 8, 1, || 0usize, |count, range| *count += range.len());
        assert_eq!(out.iter().sum::<usize>(), 2);
    }
}
