//! Item–item collaborative filtering (the paper's ItemCosCF / ItemPearCF).
//!
//! Prediction follows Eq. 2 exactly:
//!
//! ```text
//! RecScore(u, i) = Σ_{l ∈ L} sim(i, l) · r_{u,l}  /  Σ_{l ∈ L} |sim(i, l)|
//! ```
//!
//! where `L` is item `i`'s similarity list *reduced to the items rated by
//! user `u`* ("Before this computation, we reduce each similarity list L to
//! contain only items rated by user u").
//!
//! Algorithm 1's operator-facing semantics are exposed via
//! [`ItemCfModel::score`]: already-rated items return the user's own rating;
//! an empty `L` (no overlap) yields 0.

use crate::model::TrainError;
use crate::neighborhood::{
    build_item_neighborhood, build_item_neighborhood_guarded, NeighborhoodParams, NeighborhoodTable,
};
use crate::ratings::RatingsMatrix;
use recdb_guard::QueryGuard;

/// An item–item CF model: the ratings snapshot it was trained on plus the
/// item neighborhood table.
#[derive(Debug, Clone)]
pub struct ItemCfModel {
    matrix: RatingsMatrix,
    neighborhood: NeighborhoodTable,
    params: NeighborhoodParams,
}

impl ItemCfModel {
    /// Train the model ("Step I: Recommendation Model Building").
    pub fn train(matrix: RatingsMatrix, params: NeighborhoodParams) -> Self {
        let neighborhood = build_item_neighborhood(&matrix, &params);
        ItemCfModel {
            matrix,
            neighborhood,
            params,
        }
    }

    /// [`train`](Self::train) under a resource governor (checked per
    /// similarity chunk; `algo::neighborhood_build` fault site live).
    pub fn train_guarded(
        matrix: RatingsMatrix,
        params: NeighborhoodParams,
        guard: &QueryGuard,
    ) -> Result<Self, TrainError> {
        let neighborhood = build_item_neighborhood_guarded(&matrix, &params, guard)?;
        Ok(ItemCfModel {
            matrix,
            neighborhood,
            params,
        })
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// The item neighborhood table.
    pub fn neighborhood(&self) -> &NeighborhoodTable {
        &self.neighborhood
    }

    /// The parameters the model was trained with.
    pub fn params(&self) -> &NeighborhoodParams {
        &self.params
    }

    /// Number of ratings the model was built from (drives the N%
    /// maintenance rule in `recdb-core`).
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// Eq. 2 for dense indexes: predicted rating of unseen item `i` for
    /// user `u`, or `None` when `L ∩ rated(u)` is empty.
    pub fn predict_dense(&self, u: usize, i: usize) -> Option<f64> {
        let (rated_items, ratings) = self.matrix.user_csr().row(u);
        let neighbors = self.neighborhood.neighbors(i);
        // Merge-intersect: both lists are sorted by item index. The CSR
        // row gives the user's ratings as contiguous slices; sums stay
        // in f64.
        let (mut a, mut b) = (0, 0);
        let mut num = 0.0;
        let mut den = 0.0;
        while a < rated_items.len() && b < neighbors.len() {
            match (rated_items[a] as usize).cmp(&neighbors[b].0) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let (r_ul, sim) = (f64::from(ratings[a]), neighbors[b].1);
                    num += sim * r_ul;
                    den += sim.abs();
                    a += 1;
                    b += 1;
                }
            }
        }
        if den == 0.0 {
            None
        } else {
            Some(num / den)
        }
    }

    /// The Algorithm 1 per-pair score for external ids:
    ///
    /// * item already rated by the user → the user's own rating,
    /// * no overlap between the item's neighbors and the user's items → 0,
    /// * otherwise → the Eq. 2 prediction.
    ///
    /// Unknown users or items score 0 (nothing is known about them).
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item)) else {
            return 0.0;
        };
        self.score_indexed(u, i)
    }

    /// [`score`](Self::score) for already-resolved dense indexes (skips
    /// the two HashMap id lookups on hot paths).
    pub fn score_indexed(&self, u: usize, i: usize) -> f64 {
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.predict_dense(u, i).unwrap_or(0.0)
    }

    /// Predicted rating for an *unseen* pair only: `None` if the user/item
    /// is unknown, the pair is already rated, or there is no overlap.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        self.predict_indexed(u, i)
    }

    /// [`predict`](Self::predict) for already-resolved dense indexes.
    pub fn predict_indexed(&self, u: usize, i: usize) -> Option<f64> {
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        self.predict_dense(u, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn figure1() -> ItemCfModel {
        ItemCfModel::train(
            RatingsMatrix::from_ratings(vec![
                Rating::new(1, 1, 1.5),
                Rating::new(2, 2, 3.5),
                Rating::new(2, 1, 4.5),
                Rating::new(2, 3, 2.0),
                Rating::new(3, 2, 1.0),
                Rating::new(3, 1, 2.0),
                Rating::new(4, 2, 1.0),
            ]),
            NeighborhoodParams::cosine(),
        )
    }

    #[test]
    fn rated_pair_scores_own_rating() {
        let m = figure1();
        assert_eq!(m.score(2, 1), 4.5);
        assert_eq!(m.score(1, 1), 1.5);
    }

    #[test]
    fn unseen_pair_prediction_matches_eq2_by_hand() {
        let m = figure1();
        // User 1 rated only item 1 (1.5). Predicting item 2:
        // L = neighbors(2) ∩ rated(1) = {1}.
        // RecScore = sim(2,1)·1.5 / |sim(2,1)| = 1.5 (sim > 0 cancels).
        let p = m.predict(1, 2).unwrap();
        assert!((p - 1.5).abs() < 1e-12);
    }

    #[test]
    fn prediction_weights_multiple_neighbors() {
        let m = figure1();
        // User 4 rated only item 2 (1.0); predict item 1 via neighbor 2.
        let p = m.predict(4, 1).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // User 2 rated everything, so nothing is predictable (all seen).
        assert_eq!(m.predict(2, 1), None);
    }

    #[test]
    fn unknown_user_or_item_scores_zero() {
        let m = figure1();
        assert_eq!(m.score(99, 1), 0.0);
        assert_eq!(m.score(1, 99), 0.0);
        assert_eq!(m.predict(99, 1), None);
    }

    #[test]
    fn no_overlap_scores_zero() {
        // Two disconnected bipartite components.
        let m = ItemCfModel::train(
            RatingsMatrix::from_ratings(vec![Rating::new(1, 10, 5.0), Rating::new(2, 20, 4.0)]),
            NeighborhoodParams::cosine(),
        );
        assert_eq!(m.score(1, 20), 0.0, "Algorithm 1 line 14");
        assert_eq!(m.predict(1, 20), None);
    }

    #[test]
    fn predictions_bounded_by_user_rating_range() {
        // Eq. 2 is a convex combination when all sims are positive, so the
        // prediction lies within the user's min..max rating.
        let m = figure1();
        for &u in m.matrix().user_ids() {
            let uidx = m.matrix().user_idx(u).unwrap();
            let row = m.matrix().user_row(uidx);
            if row.is_empty() {
                continue;
            }
            let lo = row.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
            let hi = row
                .iter()
                .map(|&(_, r)| r)
                .fold(f64::NEG_INFINITY, f64::max);
            for &i in m.matrix().item_ids() {
                if let Some(p) = m.predict(u, i) {
                    assert!(
                        p >= lo - 1e-9 && p <= hi + 1e-9,
                        "prediction {p} outside [{lo}, {hi}] for user {u} item {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn trained_on_counts_ratings() {
        assert_eq!(figure1().trained_on(), 7);
    }
}
