//! Vectorizable numeric kernels over flat `f32` slices.
//!
//! Factor matrices are stored row-major as one contiguous `Vec<f32>`
//! (`row r` = `buf[r * f .. (r + 1) * f]`), and every hot loop in the SVD
//! trainer and the score materializer funnels through the handful of
//! kernels below. They are written as exact-iteration slice loops —
//! `chunks_exact`, zipped iterators, no bounds checks in the loop body —
//! which is the shape rustc/LLVM auto-vectorizes without `-ffast-math`.
//!
//! Float addition is not associative, so a reduction only vectorizes if
//! the code itself fixes a lane order. [`dot`] therefore accumulates into
//! eight explicit lanes and folds them in a fixed tree at the end: the
//! result is deterministic (bit-identical run-over-run for the same
//! inputs) *and* SIMD-friendly. Every caller — serial SGD, the blocked
//! parallel trainer, `score`, `score_block` — uses this one `dot`, so
//! "same factors ⇒ same score" holds across all code paths.

/// Number of parallel accumulator lanes in [`dot`].
///
/// Eight `f32` lanes fill one AVX2 register; on narrower ISAs LLVM
/// splits them into two SSE/NEON registers, which still beats a scalar
/// chain. The value is part of the determinism contract: changing it
/// changes the reduction order and thus the low bits of trained models.
pub const DOT_LANES: usize = 8;

/// Dot product of two equal-length `f32` slices with a fixed reduction
/// order (8 lanes, tree fold, scalar tail appended last).
///
/// # Panics
/// Panics in debug builds if `a.len() != b.len()` (the zip silently
/// truncates in release; all callers pass equal lengths).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; DOT_LANES];
    let chunks_a = a.chunks_exact(DOT_LANES);
    let chunks_b = b.chunks_exact(DOT_LANES);
    let tail_a = chunks_a.remainder();
    let tail_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for ((lane, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *lane += x * y;
        }
    }
    // Fixed tree reduction: ((0+4)+(2+6)) + ((1+5)+(3+7)).
    let s04 = lanes[0] + lanes[4];
    let s26 = lanes[2] + lanes[6];
    let s15 = lanes[1] + lanes[5];
    let s37 = lanes[3] + lanes[7];
    let mut sum = (s04 + s26) + (s15 + s37);
    for (&x, &y) in tail_a.iter().zip(tail_b) {
        sum += x * y;
    }
    sum
}

/// `y += alpha * x`, element-wise.
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = beta * y + alpha * x`, element-wise (fused scale-and-add).
#[inline]
pub fn scale_add(y: &mut [f32], beta: f32, alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = beta * *yi + alpha * xi;
    }
}

/// One regularized SGD update on a `(user, item)` factor-row pair:
///
/// ```text
/// p += lr * (err * q0 - lambda * p)
/// q += lr * (err * p0 - lambda * q)
/// ```
///
/// where `p0`/`q0` are the values *before* the update (the textbook
/// simultaneous step — `q`'s gradient must not see the new `p`).
#[inline]
pub fn sgd_step(p: &mut [f32], q: &mut [f32], err: f32, lr: f32, lambda: f32) {
    debug_assert_eq!(p.len(), q.len());
    for (pi, qi) in p.iter_mut().zip(q.iter_mut()) {
        let pv = *pi;
        let qv = *qi;
        *pi = pv + lr * (err * qv - lambda * pv);
        *qi = qv + lr * (err * pv - lambda * qv);
    }
}

/// Score one user row against a contiguous block of item rows.
///
/// `items` holds `out.len()` rows of length `f` back to back; `out[j]`
/// receives `dot(user, items[j*f .. (j+1)*f])`. Batching keeps the user
/// row in registers and streams the item block through cache linearly —
/// the memory layout the per-pair `score()` path can never achieve.
///
/// # Panics
/// Panics if `items.len() != out.len() * f` or `user.len() != f`.
#[inline]
pub fn score_block(user: &[f32], items: &[f32], f: usize, out: &mut [f32]) {
    assert_eq!(user.len(), f);
    assert_eq!(items.len(), out.len() * f);
    for (o, row) in out.iter_mut().zip(items.chunks_exact(f)) {
        *o = dot(user, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_scalar_reference() {
        // 19 elements: two full 8-lane chunks plus a 3-element tail.
        let a: Vec<f32> = (0..19).map(|i| 0.5 + i as f32 * 0.25).collect();
        let b: Vec<f32> = (0..19).map(|i| 1.5 - i as f32 * 0.125).collect();
        let reference: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        assert!((f64::from(dot(&a, &b)) - reference).abs() < 1e-4);
    }

    #[test]
    fn dot_is_deterministic() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32 * 0.2).cos()).collect();
        let first = dot(&a, &b);
        for _ in 0..10 {
            assert_eq!(dot(&a, &b).to_bits(), first.to_bits());
        }
    }

    #[test]
    fn dot_empty_and_short() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_adds_scaled_vector() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        axpy(&mut y, 2.0, &[10.0, 20.0, 30.0]);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn scale_add_fuses_scale_and_add() {
        let mut y = vec![2.0f32, 4.0];
        scale_add(&mut y, 0.5, 3.0, &[1.0, 2.0]);
        assert_eq!(y, vec![4.0, 8.0]);
    }

    #[test]
    fn sgd_step_uses_pre_update_values() {
        let mut p = vec![1.0f32];
        let mut q = vec![2.0f32];
        sgd_step(&mut p, &mut q, 0.5, 0.1, 0.0);
        // p = 1 + 0.1*0.5*2 = 1.1 ; q = 2 + 0.1*0.5*1 (old p!) = 2.05
        assert!((p[0] - 1.1).abs() < 1e-6);
        assert!((q[0] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn score_block_matches_per_row_dot() {
        let f = 5;
        let user: Vec<f32> = (0..f).map(|i| i as f32 + 0.5).collect();
        let items: Vec<f32> = (0..4 * f).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut out = vec![0.0f32; 4];
        score_block(&user, &items, f, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let row = &items[j * f..(j + 1) * f];
            assert_eq!(o.to_bits(), dot(&user, row).to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn score_block_rejects_ragged_input() {
        let mut out = vec![0.0f32; 2];
        score_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }
}
