//! The sparse user/item ratings matrix.
//!
//! [`RatingsMatrix`] is the in-memory form of the paper's `Ratings(uid, iid,
//! ratingval)` table: external 64-bit user/item ids are mapped to dense
//! indexes, and the matrix is stored twice — by row (each user's rated
//! items, the *UserVector table* of Algorithm 1) and by column (each item's
//! raters, the *ItemVector table*). Both adjacency lists are kept sorted by
//! dense index so similarity computations can merge-intersect in linear
//! time.

use std::collections::HashMap;

/// Compressed-sparse-row view of one orientation of the ratings matrix.
///
/// Row `r` occupies `row_ptr[r] .. row_ptr[r + 1]` in the two flat
/// arrays: `col_idx` holds the dense column indexes (sorted ascending
/// within each row, `u32` — half the footprint of `usize`) and `values`
/// the ratings, narrowed to `f32` for the numeric kernels. The view is
/// built once from the jagged adjacency lists and is read-only; the
/// jagged rows stay authoritative for `f64` lookups.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    fn from_jagged(rows: &[Vec<(usize, f64)>]) -> Self {
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in rows {
            for &(col, val) in row {
                col_idx.push(u32::try_from(col).expect("dense index exceeds u32"));
                values.push(val as f32);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows in this orientation.
    pub fn n_rows(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `r` as parallel `(column indexes, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The half-open `row_ptr` range of row `r` into [`Self::col_idx`].
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// The row-pointer array (`n_rows + 1` entries, first 0, last `nnz`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indexes, row-concatenated.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All values, row-concatenated, parallel to [`Self::col_idx`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }
}

/// One `(user, item, rating)` observation with external ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// External user id (the `uid` column).
    pub user: i64,
    /// External item id (the `iid` column).
    pub item: i64,
    /// The rating value (numeric scale, e.g. 1–5, or unary 1.0).
    pub value: f64,
}

impl Rating {
    /// Construct a rating.
    pub fn new(user: i64, item: i64, value: f64) -> Self {
        Rating { user, item, value }
    }
}

/// Sparse ratings matrix with dense user/item index spaces.
#[derive(Debug, Clone, Default)]
pub struct RatingsMatrix {
    user_ids: Vec<i64>,
    item_ids: Vec<i64>,
    user_index: HashMap<i64, usize>,
    item_index: HashMap<i64, usize>,
    /// `by_user[u]` = sorted `(item_idx, rating)` list.
    by_user: Vec<Vec<(usize, f64)>>,
    /// `by_item[i]` = sorted `(user_idx, rating)` list.
    by_item: Vec<Vec<(usize, f64)>>,
    /// CSR over users (row = user, col = item), built once in
    /// [`RatingsMatrix::from_ratings`].
    user_csr: Csr,
    /// CSR over items (row = item, col = user) — the CSC view.
    item_csr: Csr,
    n_ratings: usize,
}

impl RatingsMatrix {
    /// Build from observations. If the same `(user, item)` pair appears more
    /// than once, the **last** rating wins (a re-rate overwrites), matching
    /// UPDATE semantics on a keyed ratings table.
    pub fn from_ratings(ratings: impl IntoIterator<Item = Rating>) -> Self {
        let mut m = RatingsMatrix::default();
        // Deduplicate with last-wins before building adjacency.
        let mut latest: HashMap<(i64, i64), f64> = HashMap::new();
        let mut order: Vec<(i64, i64)> = Vec::new();
        for r in ratings {
            if latest.insert((r.user, r.item), r.value).is_none() {
                order.push((r.user, r.item));
            }
        }
        for (user, item) in order {
            let value = latest[&(user, item)];
            let u = m.intern_user(user);
            let i = m.intern_item(item);
            m.by_user[u].push((i, value));
            m.by_item[i].push((u, value));
            m.n_ratings += 1;
        }
        for row in &mut m.by_user {
            row.sort_unstable_by_key(|&(i, _)| i);
        }
        for col in &mut m.by_item {
            col.sort_unstable_by_key(|&(u, _)| u);
        }
        m.user_csr = Csr::from_jagged(&m.by_user);
        m.item_csr = Csr::from_jagged(&m.by_item);
        m
    }

    fn intern_user(&mut self, user: i64) -> usize {
        *self.user_index.entry(user).or_insert_with(|| {
            self.user_ids.push(user);
            self.by_user.push(Vec::new());
            self.user_ids.len() - 1
        })
    }

    fn intern_item(&mut self, item: i64) -> usize {
        *self.item_index.entry(item).or_insert_with(|| {
            self.item_ids.push(item);
            self.by_item.push(Vec::new());
            self.item_ids.len() - 1
        })
    }

    /// Number of distinct users.
    pub fn n_users(&self) -> usize {
        self.user_ids.len()
    }

    /// Number of distinct items.
    pub fn n_items(&self) -> usize {
        self.item_ids.len()
    }

    /// Number of stored ratings (after last-wins dedup).
    pub fn n_ratings(&self) -> usize {
        self.n_ratings
    }

    /// Dense index of an external user id.
    pub fn user_idx(&self, user: i64) -> Option<usize> {
        self.user_index.get(&user).copied()
    }

    /// Dense index of an external item id.
    pub fn item_idx(&self, item: i64) -> Option<usize> {
        self.item_index.get(&item).copied()
    }

    /// External id of a dense user index.
    pub fn user_id(&self, idx: usize) -> i64 {
        self.user_ids[idx]
    }

    /// External id of a dense item index.
    pub fn item_id(&self, idx: usize) -> i64 {
        self.item_ids[idx]
    }

    /// All external user ids, in first-seen order.
    pub fn user_ids(&self) -> &[i64] {
        &self.user_ids
    }

    /// All external item ids, in first-seen order.
    pub fn item_ids(&self) -> &[i64] {
        &self.item_ids
    }

    /// A user's rated items as sorted `(item_idx, rating)` pairs.
    pub fn user_row(&self, user_idx: usize) -> &[(usize, f64)] {
        &self.by_user[user_idx]
    }

    /// An item's raters as sorted `(user_idx, rating)` pairs.
    pub fn item_col(&self, item_idx: usize) -> &[(usize, f64)] {
        &self.by_item[item_idx]
    }

    /// CSR view over users: row `u` = user `u`'s `(item_idx, rating)`
    /// entries as parallel flat slices. Empty for a default matrix.
    pub fn user_csr(&self) -> &Csr {
        &self.user_csr
    }

    /// CSR view over items (the CSC of the user view): row `i` = item
    /// `i`'s `(user_idx, rating)` entries.
    pub fn item_csr(&self) -> &Csr {
        &self.item_csr
    }

    /// The rating user `user_idx` gave item `item_idx`, if any.
    pub fn rating_at(&self, user_idx: usize, item_idx: usize) -> Option<f64> {
        let row = &self.by_user[user_idx];
        row.binary_search_by_key(&item_idx, |&(i, _)| i)
            .ok()
            .map(|pos| row[pos].1)
    }

    /// The rating for external ids, if both exist and the pair is rated.
    pub fn rating_of(&self, user: i64, item: i64) -> Option<f64> {
        let u = self.user_idx(user)?;
        let i = self.item_idx(item)?;
        self.rating_at(u, i)
    }

    /// Mean of all stored ratings (0 if empty) — the SVD baseline offset.
    pub fn global_mean(&self) -> f64 {
        if self.n_ratings == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .by_user
            .iter()
            .flat_map(|row| row.iter().map(|&(_, r)| r))
            .sum();
        sum / self.n_ratings as f64
    }

    /// Iterate every `(user_idx, item_idx, rating)` triple.
    pub fn iter_dense(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.by_user
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |&(i, r)| (u, i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RatingsMatrix {
        RatingsMatrix::from_ratings(vec![
            Rating::new(1, 1, 1.5),
            Rating::new(2, 2, 3.5),
            Rating::new(2, 1, 4.5),
            Rating::new(2, 3, 2.0),
            Rating::new(3, 2, 1.0),
            Rating::new(3, 1, 2.0),
            Rating::new(4, 2, 1.0),
        ])
    }

    #[test]
    fn dimensions_match_paper_figure1() {
        // The Figure 1 ratings table: 4 users, 3 items, 7 ratings.
        let m = small();
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.n_ratings(), 7);
    }

    #[test]
    fn row_and_column_views_agree() {
        let m = small();
        let u2 = m.user_idx(2).unwrap();
        let rated: Vec<i64> = m.user_row(u2).iter().map(|&(i, _)| m.item_id(i)).collect();
        assert_eq!(rated, vec![1, 2, 3]); // sorted by dense idx = first-seen
        let i1 = m.item_idx(1).unwrap();
        let raters: Vec<i64> = m.item_col(i1).iter().map(|&(u, _)| m.user_id(u)).collect();
        assert_eq!(raters, vec![1, 2, 3]);
    }

    #[test]
    fn rating_lookup() {
        let m = small();
        assert_eq!(m.rating_of(2, 1), Some(4.5));
        assert_eq!(m.rating_of(1, 2), None, "unrated pair");
        assert_eq!(m.rating_of(99, 1), None, "unknown user");
        assert_eq!(m.rating_of(1, 99), None, "unknown item");
    }

    #[test]
    fn duplicate_pair_last_wins() {
        let m = RatingsMatrix::from_ratings(vec![Rating::new(1, 1, 2.0), Rating::new(1, 1, 5.0)]);
        assert_eq!(m.n_ratings(), 1);
        assert_eq!(m.rating_of(1, 1), Some(5.0));
    }

    #[test]
    fn global_mean() {
        let m = RatingsMatrix::from_ratings(vec![
            Rating::new(1, 1, 1.0),
            Rating::new(1, 2, 2.0),
            Rating::new(2, 1, 3.0),
        ]);
        assert!((m.global_mean() - 2.0).abs() < 1e-12);
        assert_eq!(RatingsMatrix::default().global_mean(), 0.0);
    }

    #[test]
    fn iter_dense_covers_everything() {
        let m = small();
        let total: usize = m.iter_dense().count();
        assert_eq!(total, 7);
        let sum: f64 = m.iter_dense().map(|(_, _, r)| r).sum();
        assert!((sum - 15.5).abs() < 1e-12);
    }

    #[test]
    fn adjacency_lists_sorted() {
        let m = small();
        for u in 0..m.n_users() {
            assert!(m.user_row(u).windows(2).all(|w| w[0].0 < w[1].0));
        }
        for i in 0..m.n_items() {
            assert!(m.item_col(i).windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn csr_views_mirror_jagged_rows() {
        let m = small();
        assert_eq!(m.user_csr().n_rows(), m.n_users());
        assert_eq!(m.item_csr().n_rows(), m.n_items());
        assert_eq!(m.user_csr().nnz(), m.n_ratings());
        assert_eq!(m.item_csr().nnz(), m.n_ratings());
        for u in 0..m.n_users() {
            let (cols, vals) = m.user_csr().row(u);
            let jagged = m.user_row(u);
            assert_eq!(cols.len(), jagged.len());
            for ((&c, &v), &(i, r)) in cols.iter().zip(vals).zip(jagged) {
                assert_eq!(c as usize, i);
                assert_eq!(f64::from(v), r, "half-star ratings are f32-exact");
            }
        }
        for i in 0..m.n_items() {
            let (cols, vals) = m.item_csr().row(i);
            let jagged = m.item_col(i);
            assert_eq!(cols.len(), jagged.len());
            for ((&c, &v), &(u, r)) in cols.iter().zip(vals).zip(jagged) {
                assert_eq!(c as usize, u);
                assert_eq!(f64::from(v), r);
            }
        }
    }

    #[test]
    fn csr_row_ptr_is_monotone_and_complete() {
        let m = small();
        let ptr = m.user_csr().row_ptr();
        assert_eq!(ptr.first(), Some(&0));
        assert_eq!(ptr.last(), Some(&m.n_ratings()));
        assert!(ptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(m.user_csr().row_range(0), 0..m.user_row(0).len());
    }

    #[test]
    fn default_matrix_has_empty_csr() {
        let m = RatingsMatrix::default();
        assert_eq!(m.user_csr().n_rows(), 0);
        assert_eq!(m.user_csr().nnz(), 0);
        assert!(m.item_csr().col_idx().is_empty());
        assert!(m.item_csr().values().is_empty());
    }

    #[test]
    fn negative_and_large_external_ids() {
        let m = RatingsMatrix::from_ratings(vec![
            Rating::new(-5, i64::MAX, 3.0),
            Rating::new(i64::MIN, -5, 1.0),
        ]);
        assert_eq!(m.rating_of(-5, i64::MAX), Some(3.0));
        assert_eq!(m.rating_of(i64::MIN, -5), Some(1.0));
    }
}
