//! User–user collaborative filtering (the paper's UserCosCF / UserPearCF).
//!
//! The paper's USERCF operator (§IV-A2) "is similar to ITEMCF except that
//! it accesses ... the item vector table (ItemVector) and the user
//! neighborhood table (UserNeighborhood)". Prediction is Eq. 2 transposed:
//!
//! ```text
//! RecScore(u, i) = Σ_{v ∈ V} sim(u, v) · r_{v,i}  /  Σ_{v ∈ V} |sim(u, v)|
//! ```
//!
//! where `V` is user `u`'s similarity list reduced to the users who rated
//! item `i`.

use crate::model::TrainError;
use crate::neighborhood::{
    build_user_neighborhood, build_user_neighborhood_guarded, NeighborhoodParams, NeighborhoodTable,
};
use crate::ratings::RatingsMatrix;
use recdb_guard::QueryGuard;

/// A user–user CF model: ratings snapshot plus user neighborhood table.
#[derive(Debug, Clone)]
pub struct UserCfModel {
    matrix: RatingsMatrix,
    neighborhood: NeighborhoodTable,
    params: NeighborhoodParams,
}

impl UserCfModel {
    /// Train the model.
    pub fn train(matrix: RatingsMatrix, params: NeighborhoodParams) -> Self {
        let neighborhood = build_user_neighborhood(&matrix, &params);
        UserCfModel {
            matrix,
            neighborhood,
            params,
        }
    }

    /// [`train`](Self::train) under a resource governor (checked per
    /// similarity chunk; `algo::neighborhood_build` fault site live).
    pub fn train_guarded(
        matrix: RatingsMatrix,
        params: NeighborhoodParams,
        guard: &QueryGuard,
    ) -> Result<Self, TrainError> {
        let neighborhood = build_user_neighborhood_guarded(&matrix, &params, guard)?;
        Ok(UserCfModel {
            matrix,
            neighborhood,
            params,
        })
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// The user neighborhood table.
    pub fn neighborhood(&self) -> &NeighborhoodTable {
        &self.neighborhood
    }

    /// The parameters the model was trained with.
    pub fn params(&self) -> &NeighborhoodParams {
        &self.params
    }

    /// Number of ratings the model was built from.
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// Transposed Eq. 2 for dense indexes, `None` when no neighbor of `u`
    /// rated `i`.
    pub fn predict_dense(&self, u: usize, i: usize) -> Option<f64> {
        let (raters, ratings) = self.matrix.item_csr().row(i);
        let neighbors = self.neighborhood.neighbors(u);
        let (mut a, mut b) = (0, 0);
        let mut num = 0.0;
        let mut den = 0.0;
        while a < raters.len() && b < neighbors.len() {
            match (raters[a] as usize).cmp(&neighbors[b].0) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let (r_vi, sim) = (f64::from(ratings[a]), neighbors[b].1);
                    num += sim * r_vi;
                    den += sim.abs();
                    a += 1;
                    b += 1;
                }
            }
        }
        if den == 0.0 {
            None
        } else {
            Some(num / den)
        }
    }

    /// Operator-facing score (same conventions as
    /// [`crate::itemcf::ItemCfModel::score`]).
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item)) else {
            return 0.0;
        };
        self.score_indexed(u, i)
    }

    /// [`score`](Self::score) for already-resolved dense indexes (skips
    /// the two HashMap id lookups on hot paths).
    pub fn score_indexed(&self, u: usize, i: usize) -> f64 {
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.predict_dense(u, i).unwrap_or(0.0)
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        self.predict_indexed(u, i)
    }

    /// [`predict`](Self::predict) for already-resolved dense indexes.
    pub fn predict_indexed(&self, u: usize, i: usize) -> Option<f64> {
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        self.predict_dense(u, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn figure1() -> UserCfModel {
        UserCfModel::train(
            RatingsMatrix::from_ratings(vec![
                Rating::new(1, 1, 1.5),
                Rating::new(2, 2, 3.5),
                Rating::new(2, 1, 4.5),
                Rating::new(2, 3, 2.0),
                Rating::new(3, 2, 1.0),
                Rating::new(3, 1, 2.0),
                Rating::new(4, 2, 1.0),
            ]),
            NeighborhoodParams::cosine(),
        )
    }

    #[test]
    fn rated_pair_scores_own_rating() {
        let m = figure1();
        assert_eq!(m.score(3, 2), 1.0);
    }

    #[test]
    fn prediction_uses_similar_users_who_rated_item() {
        let m = figure1();
        // Item 3 was rated only by user 2 (2.0). Any user similar to user 2
        // gets a prediction pulled toward 2.0; with one rater the weighted
        // average is exactly 2.0 regardless of the weight's magnitude.
        let p = m.predict(3, 3).unwrap();
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn user_without_similar_raters_gets_none() {
        let m = UserCfModel::train(
            RatingsMatrix::from_ratings(vec![Rating::new(1, 10, 5.0), Rating::new(2, 20, 4.0)]),
            NeighborhoodParams::cosine(),
        );
        assert_eq!(m.predict(1, 20), None);
        assert_eq!(m.score(1, 20), 0.0);
    }

    #[test]
    fn itemcf_and_usercf_agree_on_symmetric_data() {
        // On a fully symmetric ratings square, the two transposed models
        // produce the same score matrix.
        let ratings = vec![
            Rating::new(1, 1, 2.0),
            Rating::new(1, 2, 4.0),
            Rating::new(2, 1, 2.0),
            Rating::new(2, 2, 4.0),
            Rating::new(3, 1, 2.0),
        ];
        let ucf = UserCfModel::train(
            RatingsMatrix::from_ratings(ratings.clone()),
            NeighborhoodParams::cosine(),
        );
        // User 3 hasn't rated item 2; users 1,2 (perfectly similar) rated
        // it 4.0, so the prediction is 4.0.
        assert!((ucf.predict(3, 2).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_ids_score_zero() {
        let m = figure1();
        assert_eq!(m.score(42, 1), 0.0);
        assert_eq!(m.score(1, 42), 0.0);
    }

    #[test]
    fn pearson_variant_trains() {
        let m = UserCfModel::train(figure1().matrix().clone(), NeighborhoodParams::pearson());
        // Pearson needs ≥2 co-rated dims; users 2 and 3 share items 1,2.
        let u2 = m.matrix().user_idx(2).unwrap();
        let u3 = m.matrix().user_idx(3).unwrap();
        assert!(m.neighborhood().sim(u2, u3).is_some());
    }
}
