//! Neighborhood model construction (the paper's "Step I: Recommendation
//! Model Building").
//!
//! For item–item CF the model is the *Item Neighborhood Table*: for every
//! item, the list of `(neighbor item, SimScore)` pairs (paper §IV-A1). For
//! user–user CF it is the symmetric *User Neighborhood Table*. Both are
//! built by merge-intersecting the sorted sparse vectors of every pair of
//! items (resp. users) — `O(n² · avg_len)` with tiny constants, matching a
//! straightforward in-kernel similarity-list build. The vectors come from
//! the flat CSR views of [`RatingsMatrix`] ([`crate::ratings::Csr`]), so
//! the whole pairwise pass streams two contiguous `(u32, f32)` column
//! arrays instead of chasing per-entity `Vec` allocations; sums still
//! accumulate in `f64` (see [`co_rated_sums_csr`]).
//!
//! [`NeighborhoodParams::max_neighbors`] optionally truncates each list to
//! the strongest `k` neighbors (by `|sim|`), the standard space/accuracy
//! knob; the paper keeps full lists, so the default is no truncation.
//!
//! # Parallel building & determinism
//!
//! The pairwise build parallelizes over the outer entity with
//! [`crate::parallel::for_each_chunk`]; [`NeighborhoodParams::threads`]
//! controls the worker count (default `0` = all cores). The output is
//! **bit-identical** for every thread count, including the serial build,
//! because the table is fully canonicalized after the similarity pass:
//!
//! 1. each `(a, b)` pair is computed by exactly one worker, and its
//!    similarity depends only on the two input vectors;
//! 2. truncation keeps the top `k` under a *total* order
//!    (`|sim|` descending, then neighbor index ascending), so the kept set
//!    is independent of the order edges were discovered in;
//! 3. each final list is sorted by neighbor index, which is unique.
//!
//! Hence nondeterministic chunk→worker scheduling can never leak into the
//! result, and the cheap dynamic load balancing (row `a` costs `O(n − a)`)
//! comes for free.

use crate::model::TrainError;
use crate::parallel::{effective_threads, for_each_chunk};
use crate::ratings::RatingsMatrix;
use crate::similarity::{co_rated_sums_csr, Similarity};
use crate::topk::top_k_by;
use recdb_guard::QueryGuard;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tuning knobs for neighborhood model building.
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodParams {
    /// Similarity measure (cosine or Pearson).
    pub measure: Similarity,
    /// Keep at most this many neighbors per entity (by absolute strength);
    /// `None` keeps every neighbor with a defined similarity.
    pub max_neighbors: Option<usize>,
    /// Drop neighbors whose |sim| is at or below this floor (default 0:
    /// zero-similarity neighbors carry no signal in Eq. 2).
    pub min_abs_sim: f64,
    /// Worker threads for the pairwise build: `0` (the default) uses all
    /// available cores, `1` forces the serial path. Every setting produces
    /// a bit-identical table (see the module docs).
    pub threads: usize,
}

impl Default for NeighborhoodParams {
    fn default() -> Self {
        NeighborhoodParams {
            measure: Similarity::Cosine,
            max_neighbors: None,
            min_abs_sim: 0.0,
            threads: 0,
        }
    }
}

impl NeighborhoodParams {
    /// Cosine with default knobs.
    pub fn cosine() -> Self {
        NeighborhoodParams::default()
    }

    /// Pearson with default knobs.
    pub fn pearson() -> Self {
        NeighborhoodParams {
            measure: Similarity::Pearson,
            ..Default::default()
        }
    }
}

/// A similarity-list table over `n` entities: `lists[e]` holds sorted
/// `(neighbor_idx, sim)` pairs (sorted by neighbor index for merge joins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NeighborhoodTable {
    lists: Vec<Vec<(usize, f64)>>,
}

impl NeighborhoodTable {
    /// Neighbor list of entity `idx`, sorted by neighbor index.
    pub fn neighbors(&self, idx: usize) -> &[(usize, f64)] {
        &self.lists[idx]
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the table covers no entities.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total number of stored `(entity, neighbor)` pairs.
    pub fn total_pairs(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Similarity between `a` and `b` if `b` is in `a`'s list.
    pub fn sim(&self, a: usize, b: usize) -> Option<f64> {
        let list = &self.lists[a];
        list.binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|pos| list[pos].1)
    }
}

/// Build the item–item neighborhood table from the ratings matrix.
///
/// Items are compared in the *user-rating space*: item vectors are the
/// columns of the ratings matrix (paper §II Step I).
pub fn build_item_neighborhood(
    m: &RatingsMatrix,
    params: &NeighborhoodParams,
) -> NeighborhoodTable {
    build_pairwise(m.n_items(), |i| m.item_csr().row(i), params, None)
        .expect("ungoverned neighborhood build cannot fail")
}

/// Build the user–user neighborhood table (rows of the matrix).
pub fn build_user_neighborhood(
    m: &RatingsMatrix,
    params: &NeighborhoodParams,
) -> NeighborhoodTable {
    build_pairwise(m.n_users(), |u| m.user_csr().row(u), params, None)
        .expect("ungoverned neighborhood build cannot fail")
}

/// Governed variant of [`build_item_neighborhood`]: the guard is checked
/// once per work chunk, and the `algo::neighborhood_build` fault site is
/// live.
pub fn build_item_neighborhood_guarded(
    m: &RatingsMatrix,
    params: &NeighborhoodParams,
    guard: &QueryGuard,
) -> Result<NeighborhoodTable, TrainError> {
    build_pairwise(m.n_items(), |i| m.item_csr().row(i), params, Some(guard))
}

/// Governed variant of [`build_user_neighborhood`].
pub fn build_user_neighborhood_guarded(
    m: &RatingsMatrix,
    params: &NeighborhoodParams,
    guard: &QueryGuard,
) -> Result<NeighborhoodTable, TrainError> {
    build_pairwise(m.n_users(), |u| m.user_csr().row(u), params, Some(guard))
}

fn build_pairwise<'a, F>(
    n: usize,
    vector: F,
    params: &NeighborhoodParams,
    governor: Option<&QueryGuard>,
) -> Result<NeighborhoodTable, TrainError>
where
    F: Fn(usize) -> (&'a [u32], &'a [f32]) + Sync,
{
    let threads = effective_threads(params.threads);
    // Row `a` scans `n − a` partners, so early rows are the heavy ones;
    // smallish dynamic chunks keep workers balanced without measurable
    // scheduling overhead (one atomic fetch_add per chunk).
    let chunk = (n / (threads * 8).max(1)).clamp(1, 256);
    // Worker closures cannot return `Err`, so governed aborts park the
    // error in a shared slot; the flag makes the remaining chunks no-ops
    // so cancellation latency is one chunk, not the whole build.
    let abort: Mutex<Option<TrainError>> = Mutex::new(None);
    let aborted = AtomicBool::new(false);
    let worker_edges = for_each_chunk(
        n,
        threads,
        chunk,
        Vec::new,
        |edges: &mut Vec<(usize, usize, f64)>, range| {
            if aborted.load(Ordering::Relaxed) {
                return;
            }
            if let Some(guard) = governor {
                let gate = recdb_fault::fail_point("algo::neighborhood_build")
                    .map_err(TrainError::from)
                    .and_then(|()| guard.check().map_err(TrainError::from));
                if let Err(e) = gate {
                    aborted.store(true, Ordering::Relaxed);
                    let mut slot = abort.lock().unwrap_or_else(|p| p.into_inner());
                    slot.get_or_insert(e);
                    return;
                }
            }
            for a in range {
                let (a_cols, a_vals) = vector(a);
                if a_cols.is_empty() {
                    continue;
                }
                for b in (a + 1)..n {
                    let (b_cols, b_vals) = vector(b);
                    if b_cols.is_empty() {
                        continue;
                    }
                    let sums = co_rated_sums_csr(a_cols, a_vals, b_cols, b_vals);
                    if let Some(sim) = sums.score(params.measure) {
                        if sim.abs() > params.min_abs_sim {
                            edges.push((a, b, sim));
                        }
                    }
                }
            }
        },
    );
    if let Some(e) = abort.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let mut lists: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for edges in worker_edges {
        for (a, b, sim) in edges {
            lists[a].push((b, sim));
            lists[b].push((a, sim));
        }
    }
    // Canonicalization: both steps below are insensitive to the order the
    // edges above arrived in, which is what makes the parallel build
    // bit-identical to the serial one (module docs).
    if let Some(k) = params.max_neighbors {
        for list in &mut lists {
            if list.len() > k {
                let taken = std::mem::take(list);
                *list = top_k_by(taken, k, |x, y| {
                    y.1.abs().total_cmp(&x.1.abs()).then(x.0.cmp(&y.0))
                });
            }
        }
    }
    for list in &mut lists {
        list.sort_unstable_by_key(|&(nb, _)| nb);
    }
    Ok(NeighborhoodTable { lists })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    /// The Figure 1 ratings (4 users, 3 items).
    fn figure1() -> RatingsMatrix {
        RatingsMatrix::from_ratings(vec![
            Rating::new(1, 1, 1.5),
            Rating::new(2, 2, 3.5),
            Rating::new(2, 1, 4.5),
            Rating::new(2, 3, 2.0),
            Rating::new(3, 2, 1.0),
            Rating::new(3, 1, 2.0),
            Rating::new(4, 2, 1.0),
        ])
    }

    #[test]
    fn item_neighborhood_is_symmetric() {
        let m = figure1();
        let t = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        assert_eq!(t.len(), 3);
        for a in 0..3 {
            for &(b, s) in t.neighbors(a) {
                assert_eq!(t.sim(b, a), Some(s), "symmetry {a}<->{b}");
            }
        }
    }

    #[test]
    fn item_cosine_matches_hand_computation() {
        let m = figure1();
        let t = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        // Items 1 and 2 (dense 0 and 1): co-raters are users 2 and 3.
        // Item1 vector over them: (4.5, 2.0); item2: (3.5, 1.0).
        let i1 = m.item_idx(1).unwrap();
        let i2 = m.item_idx(2).unwrap();
        let expected = (4.5 * 3.5 + 2.0 * 1.0)
            / ((4.5f64 * 4.5 + 2.0 * 2.0).sqrt() * (3.5f64 * 3.5 + 1.0 * 1.0).sqrt());
        let got = t.sim(i1, i2).unwrap();
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn no_corated_users_means_no_edge() {
        // Items 10 and 20 share no raters.
        let m = RatingsMatrix::from_ratings(vec![Rating::new(1, 10, 5.0), Rating::new(2, 20, 4.0)]);
        let t = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        assert_eq!(t.total_pairs(), 0);
    }

    #[test]
    fn truncation_keeps_strongest() {
        // Item 0 co-rated with items 1..=3 at decreasing strength.
        let mut ratings = Vec::new();
        // Users 1..4 rate item 0 and one other item each with varying values.
        // Construct overlaps so |sim| differs: identical ratings → sim 1.
        for u in 1..=6 {
            ratings.push(Rating::new(u, 0, u as f64));
        }
        // Item 1 overlaps users 1..=6 identically (cos = 1).
        for u in 1..=6 {
            ratings.push(Rating::new(u, 1, u as f64));
        }
        // Item 2 overlaps in 2 users with opposite magnitudes (weaker cos).
        ratings.push(Rating::new(1, 2, 6.0));
        ratings.push(Rating::new(6, 2, 1.0));
        // Item 3 overlaps in 1 user (cos = 1 over the single dim).
        ratings.push(Rating::new(1, 3, 1.0));
        let m = RatingsMatrix::from_ratings(ratings);
        let full = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        let i0 = m.item_idx(0).unwrap();
        assert_eq!(full.neighbors(i0).len(), 3);
        let trunc = build_item_neighborhood(
            &m,
            &NeighborhoodParams {
                max_neighbors: Some(2),
                ..NeighborhoodParams::cosine()
            },
        );
        assert_eq!(trunc.neighbors(i0).len(), 2);
        // The kept neighbors are the two with the highest |sim|.
        let kept: Vec<usize> = trunc.neighbors(i0).iter().map(|&(n, _)| n).collect();
        let mut sims: Vec<(usize, f64)> = full.neighbors(i0).to_vec();
        sims.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        let strongest: Vec<usize> = sims[..2].iter().map(|&(n, _)| n).collect();
        assert_eq!(
            {
                let mut k = kept.clone();
                k.sort_unstable();
                k
            },
            {
                let mut s = strongest.clone();
                s.sort_unstable();
                s
            }
        );
    }

    #[test]
    fn user_neighborhood_uses_rows() {
        let m = figure1();
        let t = build_user_neighborhood(&m, &NeighborhoodParams::cosine());
        assert_eq!(t.len(), 4);
        // Users 2 and 3 co-rated items 1 and 2.
        let u2 = m.user_idx(2).unwrap();
        let u3 = m.user_idx(3).unwrap();
        let expected = (4.5 * 2.0 + 3.5 * 1.0)
            / ((4.5f64 * 4.5 + 3.5 * 3.5).sqrt() * (2.0f64 * 2.0 + 1.0 * 1.0).sqrt());
        assert!((t.sim(u2, u3).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn neighbor_lists_sorted_by_index() {
        let m = figure1();
        let t = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        for e in 0..t.len() {
            assert!(t.neighbors(e).windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn pearson_table_on_figure1() {
        let m = figure1();
        let t = build_item_neighborhood(&m, &NeighborhoodParams::pearson());
        // Items 1,2 have exactly 2 co-raters with distinct values on both
        // sides ⇒ correlation is ±1; verify it's defined and in range.
        let i1 = m.item_idx(1).unwrap();
        let i2 = m.item_idx(2).unwrap();
        let s = t.sim(i1, i2).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn min_abs_sim_filters_weak_edges() {
        let m = figure1();
        let strict = build_item_neighborhood(
            &m,
            &NeighborhoodParams {
                min_abs_sim: 0.9999,
                ..NeighborhoodParams::cosine()
            },
        );
        let loose = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        assert!(strict.total_pairs() <= loose.total_pairs());
    }

    #[test]
    fn empty_matrix_builds_empty_table() {
        let m = RatingsMatrix::default();
        let t = build_item_neighborhood(&m, &NeighborhoodParams::cosine());
        assert!(t.is_empty());
        assert_eq!(t.total_pairs(), 0);
    }

    /// A mid-sized pseudo-random matrix with varied overlap patterns.
    fn random_matrix(seed: u64, n_users: i64, n_items: i64) -> RatingsMatrix {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut ratings = Vec::new();
        for u in 0..n_users {
            for i in 0..n_items {
                // ~35% density, ratings in 1.0..=5.0 (half-star steps).
                if next() % 100 < 35 {
                    let r = 1.0 + (next() % 9) as f64 * 0.5;
                    ratings.push(Rating::new(u, i, r));
                }
            }
        }
        RatingsMatrix::from_ratings(ratings)
    }

    #[test]
    fn parallel_build_bit_identical_to_serial() {
        let m = random_matrix(42, 40, 30);
        for measure in [Similarity::Cosine, Similarity::Pearson] {
            for max_neighbors in [None, Some(3), Some(7)] {
                let base = NeighborhoodParams {
                    measure,
                    max_neighbors,
                    min_abs_sim: 0.0,
                    threads: 1,
                };
                let serial = build_item_neighborhood(&m, &base);
                for threads in [2, 3, 8] {
                    let par = build_item_neighborhood(&m, &NeighborhoodParams { threads, ..base });
                    assert_eq!(
                        par, serial,
                        "measure {measure:?}, k {max_neighbors:?}, t {threads}"
                    );
                }
                let auto = build_item_neighborhood(&m, &NeighborhoodParams { threads: 0, ..base });
                assert_eq!(auto, serial);
            }
        }
    }

    #[test]
    fn parallel_user_build_matches_serial() {
        let m = random_matrix(7, 25, 20);
        let serial = build_user_neighborhood(
            &m,
            &NeighborhoodParams {
                threads: 1,
                ..NeighborhoodParams::pearson()
            },
        );
        let par = build_user_neighborhood(
            &m,
            &NeighborhoodParams {
                threads: 4,
                ..NeighborhoodParams::pearson()
            },
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn more_threads_than_entities() {
        // n = 3 items with 16 workers: shard boundaries degenerate.
        let m = figure1();
        let serial = build_item_neighborhood(
            &m,
            &NeighborhoodParams {
                threads: 1,
                ..NeighborhoodParams::cosine()
            },
        );
        let par = build_item_neighborhood(
            &m,
            &NeighborhoodParams {
                threads: 16,
                ..NeighborhoodParams::cosine()
            },
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_matrix_with_many_threads() {
        let m = RatingsMatrix::default();
        let t = build_item_neighborhood(
            &m,
            &NeighborhoodParams {
                threads: 8,
                ..NeighborhoodParams::cosine()
            },
        );
        assert!(t.is_empty());
    }

    #[test]
    fn truncation_tie_break_prefers_lower_neighbor_index() {
        // Items 1, 2, 3 all tie at |sim| = 1 against item 0 (single
        // co-rater each with identical ratings); k = 2 must keep the two
        // lowest indices regardless of build order.
        let ratings = vec![
            Rating::new(1, 0, 2.0),
            Rating::new(1, 1, 2.0),
            Rating::new(2, 0, 3.0),
            Rating::new(2, 2, 3.0),
            Rating::new(3, 0, 4.0),
            Rating::new(3, 3, 4.0),
        ];
        let m = RatingsMatrix::from_ratings(ratings);
        let i0 = m.item_idx(0).unwrap();
        for threads in [1, 2, 8] {
            let t = build_item_neighborhood(
                &m,
                &NeighborhoodParams {
                    max_neighbors: Some(2),
                    threads,
                    ..NeighborhoodParams::cosine()
                },
            );
            let kept: Vec<usize> = t.neighbors(i0).iter().map(|&(n, _)| n).collect();
            assert_eq!(
                kept,
                vec![m.item_idx(1).unwrap(), m.item_idx(2).unwrap()],
                "threads {threads}"
            );
        }
    }
}
