//! Similarity measures over co-rated dimensions (paper Eq. 1).
//!
//! Both measures are computed over *sorted sparse vectors* — `(index,
//! value)` lists sorted by index — via a single merge pass.
//!
//! * **Cosine** (the paper's Eq. 1): `a·b / (‖a‖‖b‖)`. Following the paper
//!   ("The score is calculated using the vector's co-rated dimensions"),
//!   the norms are taken over the co-rated dimensions only.
//! * **Pearson correlation**: the classic CF variant, mean-centered over
//!   co-rated dimensions.

/// Which similarity function a neighborhood model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Similarity {
    /// Cosine similarity over co-rated dimensions (Eq. 1).
    Cosine,
    /// Pearson correlation over co-rated dimensions.
    Pearson,
}

/// Running sums over the co-rated dimensions of two sparse vectors.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoRatedSums {
    /// Number of co-rated dimensions.
    pub n: usize,
    /// Σ aᵢbᵢ
    pub dot: f64,
    /// Σ aᵢ
    pub sum_a: f64,
    /// Σ bᵢ
    pub sum_b: f64,
    /// Σ aᵢ²
    pub sq_a: f64,
    /// Σ bᵢ²
    pub sq_b: f64,
}

/// Merge-intersect two sorted sparse vectors, accumulating co-rated sums.
/// `O(|a| + |b|)`.
pub fn co_rated_sums(a: &[(usize, f64)], b: &[(usize, f64)]) -> CoRatedSums {
    let mut s = CoRatedSums::default();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (x, y) = (a[i].1, b[j].1);
                s.n += 1;
                s.dot += x * y;
                s.sum_a += x;
                s.sum_b += y;
                s.sq_a += x * x;
                s.sq_b += y * y;
                i += 1;
                j += 1;
            }
        }
    }
    s
}

/// Merge-intersect two CSR rows given as parallel `(col_idx, values)`
/// slices (the layout of [`crate::ratings::Csr::row`]), accumulating the
/// same co-rated sums in `f64`. Storage is `f32` but every accumulation
/// happens after widening, so exactly-representable ratings (the
/// half-star scale) produce bit-identical sums to the jagged `f64` path.
/// `O(|a| + |b|)`.
pub fn co_rated_sums_csr(
    a_cols: &[u32],
    a_vals: &[f32],
    b_cols: &[u32],
    b_vals: &[f32],
) -> CoRatedSums {
    debug_assert_eq!(a_cols.len(), a_vals.len());
    debug_assert_eq!(b_cols.len(), b_vals.len());
    let mut s = CoRatedSums::default();
    let (mut i, mut j) = (0, 0);
    while i < a_cols.len() && j < b_cols.len() {
        match a_cols[i].cmp(&b_cols[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (x, y) = (f64::from(a_vals[i]), f64::from(b_vals[j]));
                s.n += 1;
                s.dot += x * y;
                s.sum_a += x;
                s.sum_b += y;
                s.sq_a += x * x;
                s.sq_b += y * y;
                i += 1;
                j += 1;
            }
        }
    }
    s
}

impl CoRatedSums {
    /// Cosine similarity from the accumulated sums; `None` when undefined
    /// (no overlap or a zero-norm vector).
    pub fn cosine(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let denom = (self.sq_a * self.sq_b).sqrt();
        if denom == 0.0 {
            return None;
        }
        Some(self.dot / denom)
    }

    /// Pearson correlation from the accumulated sums; `None` when undefined
    /// (fewer than 2 co-rated dimensions or zero variance on either side).
    pub fn pearson(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let cov = self.dot - self.sum_a * self.sum_b / n;
        let var_a = self.sq_a - self.sum_a * self.sum_a / n;
        let var_b = self.sq_b - self.sum_b * self.sum_b / n;
        let denom = (var_a * var_b).sqrt();
        if denom <= f64::EPSILON {
            return None;
        }
        // Clamp against floating-point drift just outside [-1, 1].
        Some((cov / denom).clamp(-1.0, 1.0))
    }

    /// Apply the chosen measure.
    pub fn score(&self, measure: Similarity) -> Option<f64> {
        match measure {
            Similarity::Cosine => self.cosine(),
            Similarity::Pearson => self.pearson(),
        }
    }
}

/// Convenience: similarity of two sorted sparse vectors.
pub fn similarity(a: &[(usize, f64)], b: &[(usize, f64)], measure: Similarity) -> Option<f64> {
    co_rated_sums(a, b).score(measure)
}

impl std::str::FromStr for Similarity {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cosine" | "cos" => Ok(Similarity::Cosine),
            "pearson" | "pear" => Ok(Similarity::Pearson),
            other => Err(format!("unknown similarity measure `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(usize, f64)]) -> Vec<(usize, f64)> {
        pairs.to_vec()
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let a = v(&[(0, 1.0), (2, 3.0), (5, 2.0)]);
        let s = similarity(&a, &a, Similarity::Cosine).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_dims_no_overlap() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(2, 1.0), (3, 2.0)]);
        assert_eq!(similarity(&a, &b, Similarity::Cosine), None);
    }

    #[test]
    fn cosine_known_value() {
        // Co-rated dims {0, 1}: a = (1, 2), b = (2, 1).
        let a = v(&[(0, 1.0), (1, 2.0), (7, 9.0)]);
        let b = v(&[(0, 2.0), (1, 1.0), (8, 9.0)]);
        let s = similarity(&a, &b, Similarity::Cosine).unwrap();
        assert!((s - 4.0 / 5.0).abs() < 1e-12); // (2+2)/(√5·√5)
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a = v(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let b = v(&[(0, 2.0), (1, 4.0), (2, 6.0)]);
        assert!((similarity(&a, &b, Similarity::Pearson).unwrap() - 1.0).abs() < 1e-9);
        let c = v(&[(0, 3.0), (1, 2.0), (2, 1.0)]);
        assert!((similarity(&a, &c, Similarity::Pearson).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_needs_two_corated_and_variance() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 2.0)]);
        assert_eq!(similarity(&a, &b, Similarity::Pearson), None);
        // Constant vector ⇒ zero variance ⇒ undefined.
        let c = v(&[(0, 3.0), (1, 3.0)]);
        let d = v(&[(0, 1.0), (1, 2.0)]);
        assert_eq!(similarity(&c, &d, Similarity::Pearson), None);
    }

    #[test]
    fn pearson_clamped_to_unit_interval() {
        let a = v(&[(0, 1.0), (1, 1.0 + 1e-15), (2, 3.0)]);
        let b = v(&[(0, 1.0), (1, 1.0), (2, 3.0)]);
        let s = similarity(&a, &b, Similarity::Pearson).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn merge_is_symmetric() {
        let a = v(&[(0, 1.0), (3, 2.0), (5, 0.5)]);
        let b = v(&[(1, 4.0), (3, 1.0), (5, 2.0)]);
        let ab = co_rated_sums(&a, &b);
        let ba = co_rated_sums(&b, &a);
        assert_eq!(ab.n, ba.n);
        assert_eq!(ab.dot, ba.dot);
        assert_eq!(ab.sum_a, ba.sum_b);
        assert_eq!(ab.sq_a, ba.sq_b);
        assert_eq!(
            similarity(&a, &b, Similarity::Cosine),
            similarity(&b, &a, Similarity::Cosine)
        );
    }

    #[test]
    fn zero_norm_cosine_undefined() {
        let a = v(&[(0, 0.0)]);
        let b = v(&[(0, 1.0)]);
        assert_eq!(similarity(&a, &b, Similarity::Cosine), None);
    }

    #[test]
    fn csr_sums_match_jagged_sums_exactly() {
        // Half-star values are f32-exact, so both paths agree bit-for-bit.
        let a = v(&[(0, 1.5), (3, 2.0), (5, 0.5), (9, 4.5)]);
        let b = v(&[(1, 4.0), (3, 1.0), (5, 2.5), (9, 3.0)]);
        let jagged = co_rated_sums(&a, &b);
        let (ac, av): (Vec<u32>, Vec<f32>) = a.iter().map(|&(i, r)| (i as u32, r as f32)).unzip();
        let (bc, bv): (Vec<u32>, Vec<f32>) = b.iter().map(|&(i, r)| (i as u32, r as f32)).unzip();
        let csr = co_rated_sums_csr(&ac, &av, &bc, &bv);
        assert_eq!(csr.n, jagged.n);
        assert_eq!(csr.dot, jagged.dot);
        assert_eq!(csr.sum_a, jagged.sum_a);
        assert_eq!(csr.sum_b, jagged.sum_b);
        assert_eq!(csr.sq_a, jagged.sq_a);
        assert_eq!(csr.sq_b, jagged.sq_b);
    }

    #[test]
    fn parse_measure_names() {
        assert_eq!("cosine".parse::<Similarity>(), Ok(Similarity::Cosine));
        assert_eq!("Pearson".parse::<Similarity>(), Ok(Similarity::Pearson));
        assert!("jaccard".parse::<Similarity>().is_err());
    }
}
