//! The unified recommendation model (`RecModel`) and algorithm names.
//!
//! `CREATE RECOMMENDER ... USING <algorithm>` and `RECOMMEND ... USING
//! <algorithm>` name one of the paper's five §III-A algorithms (or the
//! extension [`crate::popularity`] ranking); [`Algorithm`] parses those
//! names and [`RecModel`] wraps the corresponding trained model behind one
//! scoring interface.

use crate::itemcf::ItemCfModel;
use crate::neighborhood::NeighborhoodParams;
use crate::popularity::PopularityModel;
use crate::ratings::RatingsMatrix;
use crate::similarity::Similarity;
use crate::svd::{SvdModel, SvdParams};
use crate::usercf::UserCfModel;
use recdb_fault::FaultError;
use recdb_guard::{GuardError, QueryGuard};
use std::fmt;
use std::str::FromStr;

/// Why a governed model build stopped early.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The build's [`QueryGuard`] cancelled it (deadline, explicit
    /// cancel, or budget).
    Guard(GuardError),
    /// A deterministic fault-injection site fired inside the build.
    Fault(FaultError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Guard(e) => write!(f, "model build stopped: {e}"),
            TrainError::Fault(e) => write!(f, "model build failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Guard(e) => Some(e),
            TrainError::Fault(e) => Some(e),
        }
    }
}

impl From<GuardError> for TrainError {
    fn from(e: GuardError) -> Self {
        TrainError::Guard(e)
    }
}

impl From<FaultError> for TrainError {
    fn from(e: FaultError) -> Self {
        TrainError::Fault(e)
    }
}

/// The recommendation algorithms RecDB supports (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Item–item CF, cosine similarity — the paper's default.
    ItemCosCF,
    /// Item–item CF, Pearson correlation.
    ItemPearCF,
    /// User–user CF, cosine similarity.
    UserCosCF,
    /// User–user CF, Pearson correlation.
    UserPearCF,
    /// Regularized gradient-descent matrix factorization.
    Svd,
    /// Non-personalized damped-mean popularity ranking (§II class 1;
    /// an extension beyond the paper's five CF algorithms).
    Popularity,
}

impl Algorithm {
    /// All algorithms, for exhaustive sweeps in benches/tests.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::ItemCosCF,
        Algorithm::ItemPearCF,
        Algorithm::UserCosCF,
        Algorithm::UserPearCF,
        Algorithm::Svd,
        Algorithm::Popularity,
    ];

    /// The canonical name used in SQL.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::ItemCosCF => "ItemCosCF",
            Algorithm::ItemPearCF => "ItemPearCF",
            Algorithm::UserCosCF => "UserCosCF",
            Algorithm::UserPearCF => "UserPearCF",
            Algorithm::Svd => "SVD",
            Algorithm::Popularity => "Popularity",
        }
    }

    /// Whether this is a neighborhood (vs matrix-factorization) algorithm.
    pub fn is_neighborhood(&self) -> bool {
        !matches!(self, Algorithm::Svd | Algorithm::Popularity)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "itemcoscf" => Ok(Algorithm::ItemCosCF),
            "itempearcf" => Ok(Algorithm::ItemPearCF),
            "usercoscf" => Ok(Algorithm::UserCosCF),
            "userpearcf" => Ok(Algorithm::UserPearCF),
            "svd" => Ok(Algorithm::Svd),
            "popularity" | "mostpopular" => Ok(Algorithm::Popularity),
            other => Err(format!(
                "unknown recommendation algorithm `{other}` (expected ItemCosCF, \
                 ItemPearCF, UserCosCF, UserPearCF, SVD, or Popularity)"
            )),
        }
    }
}

/// Training-time configuration shared by every algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainConfig {
    /// Neighborhood knobs for the CF algorithms.
    pub neighborhood: NeighborhoodKnobs,
    /// SVD hyper-parameters.
    pub svd: SvdParams,
}

/// Neighborhood knobs exposed without committing to a measure (the measure
/// comes from the [`Algorithm`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborhoodKnobs {
    /// Optional neighbor-list truncation.
    pub max_neighbors: Option<usize>,
    /// Minimum |sim| to keep an edge.
    pub min_abs_sim: f64,
    /// Build threads (`0` = all cores; output is bit-identical for every
    /// setting — see [`crate::neighborhood`]). The `Default` of `0` makes
    /// model building parallel out of the box.
    pub threads: usize,
}

impl NeighborhoodKnobs {
    fn params(&self, measure: Similarity) -> NeighborhoodParams {
        NeighborhoodParams {
            measure,
            max_neighbors: self.max_neighbors,
            min_abs_sim: self.min_abs_sim,
            threads: self.threads,
        }
    }
}

/// A trained recommendation model of any supported algorithm.
#[derive(Debug, Clone)]
pub enum RecModel {
    /// Item neighborhood model (ItemCosCF / ItemPearCF).
    Item(ItemCfModel),
    /// User neighborhood model (UserCosCF / UserPearCF).
    User(UserCfModel),
    /// Factor model (SVD).
    Factors(SvdModel),
    /// Non-personalized popularity model.
    Popular(PopularityModel),
}

impl RecModel {
    /// Train the model for `algorithm` on a ratings snapshot
    /// ("Recommender Initialization", §III-A).
    pub fn train(algorithm: Algorithm, matrix: RatingsMatrix, config: &TrainConfig) -> Self {
        match algorithm {
            Algorithm::ItemCosCF => RecModel::Item(ItemCfModel::train(
                matrix,
                config.neighborhood.params(Similarity::Cosine),
            )),
            Algorithm::ItemPearCF => RecModel::Item(ItemCfModel::train(
                matrix,
                config.neighborhood.params(Similarity::Pearson),
            )),
            Algorithm::UserCosCF => RecModel::User(UserCfModel::train(
                matrix,
                config.neighborhood.params(Similarity::Cosine),
            )),
            Algorithm::UserPearCF => RecModel::User(UserCfModel::train(
                matrix,
                config.neighborhood.params(Similarity::Pearson),
            )),
            Algorithm::Svd => RecModel::Factors(SvdModel::train(matrix, config.svd)),
            Algorithm::Popularity => RecModel::Popular(PopularityModel::train(matrix)),
        }
    }

    /// [`train`](Self::train) under a resource governor: the guard is
    /// checked at epoch/chunk granularity and the build's fault-injection
    /// sites (`algo::svd_epoch`, `algo::neighborhood_build`) are live.
    /// The engine builds every recommender through this path so a
    /// deadline or injected fault aborts the build instead of wedging it.
    pub fn train_guarded(
        algorithm: Algorithm,
        matrix: RatingsMatrix,
        config: &TrainConfig,
        guard: &QueryGuard,
    ) -> Result<Self, TrainError> {
        Ok(match algorithm {
            Algorithm::ItemCosCF => RecModel::Item(ItemCfModel::train_guarded(
                matrix,
                config.neighborhood.params(Similarity::Cosine),
                guard,
            )?),
            Algorithm::ItemPearCF => RecModel::Item(ItemCfModel::train_guarded(
                matrix,
                config.neighborhood.params(Similarity::Pearson),
                guard,
            )?),
            Algorithm::UserCosCF => RecModel::User(UserCfModel::train_guarded(
                matrix,
                config.neighborhood.params(Similarity::Cosine),
                guard,
            )?),
            Algorithm::UserPearCF => RecModel::User(UserCfModel::train_guarded(
                matrix,
                config.neighborhood.params(Similarity::Pearson),
                guard,
            )?),
            Algorithm::Svd => {
                RecModel::Factors(SvdModel::train_guarded(matrix, config.svd, guard)?)
            }
            Algorithm::Popularity => {
                // A single cheap aggregation pass: one check suffices.
                guard.check()?;
                RecModel::Popular(PopularityModel::train(matrix))
            }
        })
    }

    /// The ratings snapshot the model was trained on.
    pub fn matrix(&self) -> &RatingsMatrix {
        match self {
            RecModel::Item(m) => m.matrix(),
            RecModel::User(m) => m.matrix(),
            RecModel::Factors(m) => m.matrix(),
            RecModel::Popular(m) => m.matrix(),
        }
    }

    /// Number of ratings the model was built from (for the N% rule).
    pub fn trained_on(&self) -> usize {
        match self {
            RecModel::Item(m) => m.trained_on(),
            RecModel::User(m) => m.trained_on(),
            RecModel::Factors(m) => m.trained_on(),
            RecModel::Popular(m) => m.trained_on(),
        }
    }

    /// Operator-facing `RecScore(u, i)`: rated pairs return the stored
    /// rating, unknown ids and no-signal pairs return 0 (Algorithm 1/2).
    pub fn score(&self, user: i64, item: i64) -> f64 {
        match self {
            RecModel::Item(m) => m.score(user, item),
            RecModel::User(m) => m.score(user, item),
            RecModel::Factors(m) => m.score(user, item),
            RecModel::Popular(m) => m.score(user, item),
        }
    }

    /// [`score`](Self::score) for already-resolved dense indexes: the
    /// hot-path variant for callers that iterate the dense index space
    /// and resolve external ids once up front.
    pub fn score_indexed(&self, u: usize, i: usize) -> f64 {
        match self {
            RecModel::Item(m) => m.score_indexed(u, i),
            RecModel::User(m) => m.score_indexed(u, i),
            RecModel::Factors(m) => m.score_indexed(u, i),
            RecModel::Popular(m) => m.score_indexed(u, i),
        }
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        match self {
            RecModel::Item(m) => m.predict(user, item),
            RecModel::User(m) => m.predict(user, item),
            RecModel::Factors(m) => m.predict(user, item),
            RecModel::Popular(m) => m.predict(user, item),
        }
    }

    /// [`predict`](Self::predict) for already-resolved dense indexes.
    pub fn predict_indexed(&self, u: usize, i: usize) -> Option<f64> {
        match self {
            RecModel::Item(m) => m.predict_indexed(u, i),
            RecModel::User(m) => m.predict_indexed(u, i),
            RecModel::Factors(m) => m.predict_indexed(u, i),
            RecModel::Popular(m) => m.predict_indexed(u, i),
        }
    }

    /// Batch-score every item dense user `u` has **not** rated, appending
    /// `(item_idx, score)` in ascending item order — the score
    /// materializer's inner loop. No-signal pairs score 0 (Algorithm 1
    /// line 14), matching `predict(..).unwrap_or(0.0)` per pair. The SVD
    /// arm runs blocked [`SvdModel::score_block`] kernels; the others
    /// walk the user's sorted CSR row to skip rated items.
    pub fn score_unseen_into(&self, u: usize, out: &mut Vec<(usize, f64)>) {
        if let RecModel::Factors(m) = self {
            m.score_unseen_into(u, out);
            return;
        }
        let matrix = self.matrix();
        let (rated, _) = matrix.user_csr().row(u);
        let mut rated_pos = 0;
        for i in 0..matrix.n_items() {
            while rated_pos < rated.len() && (rated[rated_pos] as usize) < i {
                rated_pos += 1;
            }
            if rated_pos < rated.len() && rated[rated_pos] as usize == i {
                continue;
            }
            let score = match self {
                RecModel::Item(m) => m.predict_dense(u, i).unwrap_or(0.0),
                RecModel::User(m) => m.predict_dense(u, i).unwrap_or(0.0),
                RecModel::Factors(_) => unreachable!("handled above"),
                RecModel::Popular(m) => m.item_score(i),
            };
            out.push((i, score));
        }
    }

    /// The `k` best unseen items for dense user `u`, ranked score
    /// descending with ascending item index as the tie-break (the
    /// `RECOMMEND ... LIMIT k` ordering). Built on
    /// [`score_unseen_into`](Self::score_unseen_into) +
    /// [`crate::topk::top_k_by`].
    pub fn top_k_unseen(&self, u: usize, k: usize) -> Vec<(usize, f64)> {
        let mut scored = Vec::new();
        self.score_unseen_into(u, &mut scored);
        crate::topk::top_k_by(scored, k, |a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn matrix() -> RatingsMatrix {
        RatingsMatrix::from_ratings(vec![
            Rating::new(1, 1, 1.5),
            Rating::new(2, 2, 3.5),
            Rating::new(2, 1, 4.5),
            Rating::new(2, 3, 2.0),
            Rating::new(3, 2, 1.0),
            Rating::new(3, 1, 2.0),
            Rating::new(4, 2, 1.0),
        ])
    }

    #[test]
    fn parse_all_algorithm_names() {
        for algo in Algorithm::ALL {
            let parsed: Algorithm = algo.name().parse().unwrap();
            assert_eq!(parsed, algo);
            // Case-insensitive, like SQL keywords.
            let parsed: Algorithm = algo.name().to_uppercase().parse().unwrap();
            assert_eq!(parsed, algo);
        }
        assert!("TensorFact".parse::<Algorithm>().is_err());
    }

    #[test]
    fn every_algorithm_trains_and_scores() {
        let config = TrainConfig {
            svd: SvdParams {
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        for algo in Algorithm::ALL {
            let model = RecModel::train(algo, matrix(), &config);
            assert_eq!(model.trained_on(), 7, "{algo}");
            // Rated pair passes through for every algorithm.
            assert_eq!(model.score(2, 1), 4.5, "{algo}");
            // Scores are finite for all pairs.
            for u in 1..=4 {
                for i in 1..=3 {
                    assert!(model.score(u, i).is_finite(), "{algo} ({u},{i})");
                }
            }
        }
    }

    #[test]
    fn indexed_paths_match_id_paths_for_every_algorithm() {
        let config = TrainConfig {
            svd: SvdParams {
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        for algo in Algorithm::ALL {
            let m = matrix();
            let model = RecModel::train(algo, m.clone(), &config);
            for &user in m.user_ids() {
                let u = m.user_idx(user).unwrap();
                for &item in m.item_ids() {
                    let i = m.item_idx(item).unwrap();
                    assert_eq!(model.score(user, item), model.score_indexed(u, i), "{algo}");
                    assert_eq!(
                        model.predict(user, item),
                        model.predict_indexed(u, i),
                        "{algo}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_scoring_matches_per_pair_for_every_algorithm() {
        let config = TrainConfig {
            svd: SvdParams {
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        for algo in Algorithm::ALL {
            let m = matrix();
            let model = RecModel::train(algo, m.clone(), &config);
            for u in 0..m.n_users() {
                let mut batch = Vec::new();
                model.score_unseen_into(u, &mut batch);
                let expected: Vec<(usize, f64)> = (0..m.n_items())
                    .filter(|&i| m.rating_at(u, i).is_none())
                    .map(|i| (i, model.predict_indexed(u, i).unwrap_or(0.0)))
                    .collect();
                assert_eq!(batch, expected, "{algo} user {u}");
            }
        }
    }

    #[test]
    fn top_k_unseen_ranks_by_score_then_index() {
        let model = RecModel::train(Algorithm::Popularity, matrix(), &TrainConfig::default());
        // User 1 rated only item 1 → items 2 and 3 are candidates.
        let u = model.matrix().user_idx(1).unwrap();
        let top = model.top_k_unseen(u, 10);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1, "descending scores");
        let one = model.top_k_unseen(u, 1);
        assert_eq!(one[0], top[0]);
        assert!(model.top_k_unseen(u, 0).is_empty());
    }

    #[test]
    fn neighborhood_flag() {
        assert!(Algorithm::ItemCosCF.is_neighborhood());
        assert!(Algorithm::UserPearCF.is_neighborhood());
        assert!(!Algorithm::Svd.is_neighborhood());
        assert!(!Algorithm::Popularity.is_neighborhood());
    }

    #[test]
    fn display_matches_sql_name() {
        assert_eq!(Algorithm::Svd.to_string(), "SVD");
        assert_eq!(Algorithm::ItemCosCF.to_string(), "ItemCosCF");
    }
}
