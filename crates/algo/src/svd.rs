//! Regularized gradient-descent matrix factorization (the paper's "SVD").
//!
//! The paper (§IV-A3, Eq. 3) learns user factor vectors `p_u` and item
//! factor vectors `q_i` minimizing
//!
//! ```text
//! Σ_{(u,i)∈K} (r_ui − q_iᵀ p_u)² + λ(‖q_i‖² + ‖p_u‖²)
//! ```
//!
//! via stochastic gradient descent ("Regularized Gradient Descent Singular
//! Value Decomposition"). The learned tables are exactly the paper's
//! Figure 2 *User Factor Table* and *Item Factor Table*; prediction is the
//! dot product (Algorithm 2, line 7).
//!
//! Factors are stored row-major as flat `Vec<f32>` (`p_u =
//! user_factors[u*f .. (u+1)*f]`) and every inner loop goes through
//! [`crate::kernels`], so the trainer streams contiguous memory and the
//! dot products auto-vectorize. Ratings are read from the CSR view of
//! [`RatingsMatrix`]. A small deterministic xorshift PRNG seeds the
//! factors so training is reproducible for a given [`SvdParams::seed`].
//!
//! # Parallel training & determinism
//!
//! SGD is inherently sequential — every update reads the factors the
//! previous update wrote — so parallelizing it changes the update stream.
//! The contract here:
//!
//! * [`SvdParams::threads`] `= 1` (the **default**) runs the exact
//!   sequential SGD stream (global Fisher–Yates visit order continuing
//!   the initialization generator).
//! * `threads > 1` (or `0` = all cores) opts into **block-sequential
//!   cache-blocked SGD** (Gemulla-style stratified DSGD): users and items
//!   are each partitioned into `B` contiguous blocks, where `B` is the
//!   requested worker count clamped to the matrix dimensions. An epoch is
//!   `B` sub-epochs; in sub-epoch `s`, cell `t` trains on (user block
//!   `t`, item block `(t + s) mod B`). The `B` cells of one sub-epoch
//!   touch pairwise-disjoint user *and* item factor rows, so they can run
//!   in any order — or on any number of OS threads — and produce the
//!   **same bits**. Each cell derives its visit order from a private
//!   PRNG seeded by `(seed, epoch, sub-epoch, block)` only. There are no
//!   epoch-start factor snapshots, no per-shard delta buffers, and no
//!   merge pass: updates land in place, and the result is deterministic
//!   for a fixed `(seed, threads)` pair regardless of the machine's
//!   actual core count.
//!
//! Note the serial path reports the paper-era RMSE (pre-update error
//! accumulated *during* the epoch) while the block path evaluates at
//! training end; both converge to the same notion as training settles.

use crate::kernels;
use crate::model::TrainError;
use crate::parallel::effective_threads;
use crate::ratings::{Csr, RatingsMatrix};
use recdb_guard::QueryGuard;

/// Hyper-parameters for SGD matrix factorization.
#[derive(Debug, Clone, Copy)]
pub struct SvdParams {
    /// Number of latent factors (the paper's Figure 2 shows 3; defaults
    /// follow common MovieLens practice).
    pub factors: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Regularization strength λ of Eq. 3.
    pub lambda: f64,
    /// Number of passes over the ratings.
    pub epochs: usize,
    /// PRNG seed for factor initialization.
    pub seed: u64,
    /// SGD worker threads. `1` (the default) is the exact sequential
    /// update stream; `> 1` (or `0` = all cores) opts into deterministic
    /// block-sequential SGD — see the module docs for the
    /// reproducibility contract.
    pub threads: usize,
}

impl Default for SvdParams {
    fn default() -> Self {
        SvdParams {
            factors: 32,
            learning_rate: 0.01,
            lambda: 0.05,
            epochs: 30,
            seed: 0x5EED_CAFE,
            threads: 1,
        }
    }
}

/// Deterministic xorshift64* generator for reproducible initialization.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fisher–Yates shuffle of `order` driven by `rng`.
fn shuffle(order: &mut [u32], rng: &mut XorShift64) {
    for k in (1..order.len()).rev() {
        let j = (rng.next_u64() % (k as u64 + 1)) as usize;
        order.swap(k, j);
    }
}

/// A trained matrix-factorization model: the user and item factor tables.
#[derive(Debug, Clone)]
pub struct SvdModel {
    matrix: RatingsMatrix,
    /// `user_factors[u * factors ..][..factors]` = p_u (flat row-major).
    user_factors: Vec<f32>,
    /// `item_factors[i * factors ..][..factors]` = q_i (flat row-major).
    item_factors: Vec<f32>,
    factors: usize,
    params: SvdParams,
    /// Training RMSE after the final epoch (a health indicator).
    final_rmse: f64,
}

impl SvdModel {
    /// Train with SGD on the given ratings snapshot.
    pub fn train(matrix: RatingsMatrix, params: SvdParams) -> Self {
        Self::train_inner(matrix, params, None).expect("ungoverned SVD training cannot fail")
    }

    /// [`train`](Self::train) under a resource governor: the guard and
    /// the `algo::svd_epoch` fault site are evaluated before every epoch,
    /// so a deadline or injected failure aborts within one epoch.
    pub fn train_guarded(
        matrix: RatingsMatrix,
        params: SvdParams,
        guard: &QueryGuard,
    ) -> Result<Self, TrainError> {
        Self::train_inner(matrix, params, Some(guard))
    }

    fn train_inner(
        matrix: RatingsMatrix,
        params: SvdParams,
        governor: Option<&QueryGuard>,
    ) -> Result<Self, TrainError> {
        let f = params.factors.max(1);
        let n_users = matrix.n_users();
        let n_items = matrix.n_items();
        let mut rng = XorShift64::new(params.seed);
        // Initialize around sqrt(mean/f) so initial dot products land near
        // the rating scale, a standard Funk-SVD warm start.
        let mean = matrix.global_mean();
        let scale = if mean > 0.0 {
            (mean / f as f64).sqrt()
        } else {
            0.1
        };
        let mut user_factors: Vec<f32> = (0..n_users * f)
            .map(|_| (scale * (0.5 + 0.5 * rng.next_f64())) as f32)
            .collect();
        let mut item_factors: Vec<f32> = (0..n_items * f)
            .map(|_| (scale * (0.5 + 0.5 * rng.next_f64())) as f32)
            .collect();

        let threads = effective_threads(params.threads).min(n_users.max(1));
        let final_rmse = if threads <= 1 {
            sgd_serial(
                &matrix,
                &params,
                f,
                &mut rng,
                &mut user_factors,
                &mut item_factors,
                governor,
            )?
        } else {
            // The block grid needs at least as many item blocks as user
            // blocks for sub-epoch cells to stay disjoint, so B is also
            // clamped by the item count.
            let b = threads.min(n_items.max(1));
            sgd_block_sequential(
                &matrix,
                &params,
                f,
                b,
                &mut user_factors,
                &mut item_factors,
                governor,
            )?
        };
        Ok(SvdModel {
            matrix,
            user_factors,
            item_factors,
            factors: f,
            params,
            final_rmse,
        })
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// Hyper-parameters used for training.
    pub fn params(&self) -> &SvdParams {
        &self.params
    }

    /// Number of latent factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Training RMSE after the last epoch.
    pub fn final_rmse(&self) -> f64 {
        self.final_rmse
    }

    /// Number of ratings the model was built from.
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// The user factor vector p_u (paper Figure 2a), by dense index.
    pub fn user_vector(&self, u: usize) -> &[f32] {
        &self.user_factors[u * self.factors..(u + 1) * self.factors]
    }

    /// The item factor vector q_i (paper Figure 2b), by dense index.
    pub fn item_vector(&self, i: usize) -> &[f32] {
        &self.item_factors[i * self.factors..(i + 1) * self.factors]
    }

    /// Algorithm 2's per-pair score: dot product of the factor vectors;
    /// already-rated pairs return the user's own rating; unknown ids → 0.
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item)) else {
            return 0.0;
        };
        self.score_indexed(u, i)
    }

    /// [`score`](Self::score) for already-resolved dense indexes — the
    /// hot-path variant that skips both HashMap id lookups. Callers that
    /// iterate the dense index space (the evaluation harness, the score
    /// materializer) resolve ids once and use this.
    pub fn score_indexed(&self, u: usize, i: usize) -> f64 {
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.dot(u, i)
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        self.predict_indexed(u, i)
    }

    /// [`predict`](Self::predict) for already-resolved dense indexes.
    pub fn predict_indexed(&self, u: usize, i: usize) -> Option<f64> {
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        Some(self.dot(u, i))
    }

    /// Batched raw scores: factor dot products of user `u` against the
    /// contiguous item range `first_item .. first_item + out.len()`.
    /// No rated-pair substitution — callers that need Algorithm 2
    /// semantics overlay the user's own ratings afterwards (their CSR
    /// row is sorted, so the overlay is a linear merge).
    pub fn score_block(&self, u: usize, first_item: usize, out: &mut [f32]) {
        let f = self.factors;
        let lo = first_item * f;
        let hi = lo + out.len() * f;
        kernels::score_block(self.user_vector(u), &self.item_factors[lo..hi], f, out);
    }

    /// Batch-score every item the user has **not** rated, pushing
    /// `(item_idx, score)` in ascending item order. Items are scored in
    /// contiguous [`Self::score_block`] chunks and the user's sorted CSR
    /// row is merged in to skip rated pairs, so ids and ratings resolve
    /// once per user instead of once per pair. Produces bit-identical
    /// scores to calling [`Self::predict_indexed`] per item.
    pub fn score_unseen_into(&self, u: usize, out: &mut Vec<(usize, f64)>) {
        const BLOCK: usize = 256;
        let n_items = self.matrix.n_items();
        let (rated, _) = self.matrix.user_csr().row(u);
        let mut rated_pos = 0;
        let mut buf = [0.0f32; BLOCK];
        let mut first = 0;
        while first < n_items {
            let len = BLOCK.min(n_items - first);
            self.score_block(u, first, &mut buf[..len]);
            for (j, &s) in buf[..len].iter().enumerate() {
                let i = first + j;
                while rated_pos < rated.len() && (rated[rated_pos] as usize) < i {
                    rated_pos += 1;
                }
                if rated_pos < rated.len() && rated[rated_pos] as usize == i {
                    continue;
                }
                out.push((i, f64::from(s)));
            }
            first += len;
        }
    }

    fn dot(&self, u: usize, i: usize) -> f64 {
        f64::from(kernels::dot(self.user_vector(u), self.item_vector(i)))
    }
}

/// Collect the CSR triples as `(user, item, rating)` with narrow indexes.
fn collect_triples(matrix: &RatingsMatrix) -> Vec<(u32, u32, f32)> {
    let csr = matrix.user_csr();
    let mut triples = Vec::with_capacity(csr.nnz());
    for u in 0..matrix.n_users() {
        let (cols, vals) = csr.row(u);
        for (&i, &r) in cols.iter().zip(vals) {
            triples.push((u as u32, i, r));
        }
    }
    triples
}

/// The exact sequential SGD loop (`rng` continues the initialization
/// generator, so the update stream depends only on the seed). Returns the
/// during-epoch training RMSE of the final epoch.
#[allow(clippy::too_many_arguments)]
fn sgd_serial(
    matrix: &RatingsMatrix,
    params: &SvdParams,
    f: usize,
    rng: &mut XorShift64,
    user_factors: &mut [f32],
    item_factors: &mut [f32],
    governor: Option<&QueryGuard>,
) -> Result<f64, TrainError> {
    let triples = collect_triples(matrix);
    let lr = params.learning_rate as f32;
    let lambda = params.lambda as f32;
    let mut order: Vec<u32> = (0..triples.len() as u32).collect();
    let mut final_rmse = 0.0;
    for _epoch in 0..params.epochs {
        if let Some(guard) = governor {
            recdb_fault::fail_point("algo::svd_epoch")?;
            guard.check()?;
        }
        // Fisher-Yates shuffle of the visit order each epoch.
        shuffle(&mut order, rng);
        let mut sq_err = 0.0f64;
        for &t in &order {
            let (u, i, r) = triples[t as usize];
            let (u, i) = (u as usize, i as usize);
            let p = &mut user_factors[u * f..(u + 1) * f];
            let q = &mut item_factors[i * f..(i + 1) * f];
            let err = r - kernels::dot(p, q);
            sq_err += f64::from(err) * f64::from(err);
            kernels::sgd_step(p, q, err, lr, lambda);
        }
        final_rmse = if triples.is_empty() {
            0.0
        } else {
            (sq_err / triples.len() as f64).sqrt()
        };
    }
    Ok(final_rmse)
}

/// One cell of the block grid: train on (user block `t`, item block `c`)
/// with a visit order derived only from `(seed, epoch, sub, t)`. The
/// borrow set is exactly the two factor chunks, which is what lets the
/// `B` cells of a sub-epoch run concurrently without synchronization.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    csr: &Csr,
    splits: &[u32],
    b: usize,
    per_u: usize,
    per_i: usize,
    f: usize,
    seed: u64,
    epoch: usize,
    sub: usize,
    t: usize,
    c: usize,
    u_chunk: &mut [f32],
    i_chunk: &mut [f32],
    lr: f32,
    lambda: f32,
) {
    let first_user = t * per_u;
    let item_base = c * per_i;
    let users_in_block = u_chunk.len() / f;
    // Distinct splitmix64-style stream per (epoch, sub-epoch, block): all
    // inputs are fixed before the sub-epoch starts, hence deterministic.
    let mut rng = XorShift64::new(
        seed.wrapping_add((epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((sub as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((t as u64).wrapping_mul(0x94D0_49BB_1331_11EB)),
    );
    let mut order: Vec<u32> = (0..users_in_block as u32).collect();
    shuffle(&mut order, &mut rng);
    for &local in &order {
        let local = local as usize;
        let u = first_user + local;
        // The CSR row is sorted by item index, so the entries belonging
        // to item block `c` are one precomputed contiguous subrange.
        let lo = splits[u * (b + 1) + c] as usize;
        let hi = splits[u * (b + 1) + c + 1] as usize;
        if lo == hi {
            continue;
        }
        let (cols, vals) = csr.row(u);
        let p = &mut u_chunk[local * f..(local + 1) * f];
        for (&i, &r) in cols[lo..hi].iter().zip(&vals[lo..hi]) {
            let qi = (i as usize - item_base) * f;
            let q = &mut i_chunk[qi..qi + f];
            let err = r - kernels::dot(p, q);
            kernels::sgd_step(p, q, err, lr, lambda);
        }
    }
}

/// Block-sequential cache-blocked SGD (module docs): a `B × B` grid of
/// (user block, item block) cells, `B` sub-epochs per epoch, cell
/// `(t, (t + s) mod B)` trained in sub-epoch `s`. Updates land in the
/// factor tables directly — no snapshots, no delta merges. Because the
/// cells of a sub-epoch touch disjoint factor rows, running them on one
/// thread in canonical order is bit-identical to running them on `B`
/// threads, so the worker count below adapts to the machine while the
/// result depends only on `(seed, B)`. Returns the end-of-training RMSE.
#[allow(clippy::too_many_arguments)]
fn sgd_block_sequential(
    matrix: &RatingsMatrix,
    params: &SvdParams,
    f: usize,
    b: usize,
    user_factors: &mut [f32],
    item_factors: &mut [f32],
    governor: Option<&QueryGuard>,
) -> Result<f64, TrainError> {
    let n_users = matrix.n_users();
    let n_items = matrix.n_items();
    let csr = matrix.user_csr();
    let per_u = n_users.div_ceil(b);
    let per_i = n_items.div_ceil(b);
    let lr = params.learning_rate as f32;
    let lambda = params.lambda as f32;

    // Split every user's CSR row at the item-block boundaries once:
    // splits[u*(B+1) + k] = first position in row(u) with item ≥ k·per_i.
    let mut splits: Vec<u32> = Vec::with_capacity(n_users * (b + 1));
    for u in 0..n_users {
        let (cols, _) = csr.row(u);
        for k in 0..=b {
            let bound = (k * per_i).min(n_items) as u32;
            splits.push(cols.partition_point(|&col| col < bound) as u32);
        }
    }

    // Hardware workers actually used; the schedule and the bits do not
    // depend on this (disjoint cells), only wall-clock does. On a single
    // core the cells run inline with zero spawn overhead.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(b);
    for epoch in 0..params.epochs {
        // Epoch-coordinator check: one guard/fault evaluation per epoch,
        // so cells stay check-free and lock-free.
        if let Some(guard) = governor {
            recdb_fault::fail_point("algo::svd_epoch")?;
            guard.check()?;
        }
        for sub in 0..b {
            if workers <= 1 {
                let mut items = &mut *item_factors;
                let mut item_chunks: Vec<Option<&mut [f32]>> = Vec::with_capacity(b);
                while !items.is_empty() {
                    let take = (per_i * f).min(items.len());
                    let (head, rest) = items.split_at_mut(take);
                    item_chunks.push(Some(head));
                    items = rest;
                }
                for (t, u_chunk) in user_factors.chunks_mut(per_u * f).enumerate() {
                    let c = (t + sub) % b;
                    let Some(i_chunk) = item_chunks.get_mut(c).and_then(Option::take) else {
                        continue;
                    };
                    run_cell(
                        csr,
                        &splits,
                        b,
                        per_u,
                        per_i,
                        f,
                        params.seed,
                        epoch,
                        sub,
                        t,
                        c,
                        u_chunk,
                        i_chunk,
                        lr,
                        lambda,
                    );
                }
            } else {
                let splits = &splits;
                std::thread::scope(|scope| {
                    let mut item_chunks: Vec<Option<&mut [f32]>> =
                        item_factors.chunks_mut(per_i * f).map(Some).collect();
                    for (t, u_chunk) in user_factors.chunks_mut(per_u * f).enumerate() {
                        let c = (t + sub) % b;
                        let Some(i_chunk) = item_chunks.get_mut(c).and_then(Option::take) else {
                            continue;
                        };
                        scope.spawn(move || {
                            run_cell(
                                csr,
                                splits,
                                b,
                                per_u,
                                per_i,
                                f,
                                params.seed,
                                epoch,
                                sub,
                                t,
                                c,
                                u_chunk,
                                i_chunk,
                                lr,
                                lambda,
                            );
                        });
                    }
                });
            }
        }
    }
    let triples = collect_triples(matrix);
    Ok(parallel_rmse(&triples, user_factors, item_factors, f, b))
}

/// RMSE over `triples` with the given factor tables. The triples are cut
/// into `threads` contiguous chunks and the per-chunk partial sums are
/// combined in slice order, so the result is deterministic for a fixed
/// chunk count whether the chunks run inline or on worker threads.
fn parallel_rmse(
    triples: &[(u32, u32, f32)],
    user_factors: &[f32],
    item_factors: &[f32],
    f: usize,
    threads: usize,
) -> f64 {
    if triples.is_empty() {
        return 0.0;
    }
    let per = triples.len().div_ceil(threads.max(1));
    let chunk_sum = |slice: &[(u32, u32, f32)]| {
        let mut sq = 0.0f64;
        for &(u, i, r) in slice {
            let p = &user_factors[u as usize * f..(u as usize + 1) * f];
            let q = &item_factors[i as usize * f..(i as usize + 1) * f];
            let err = f64::from(r) - f64::from(kernels::dot(p, q));
            sq += err * err;
        }
        sq
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let partials: Vec<f64> = if hw <= 1 {
        triples.chunks(per).map(chunk_sum).collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = triples
                .chunks(per)
                .map(|slice| s.spawn(|| chunk_sum(slice)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("RMSE worker panicked"))
                .collect()
        })
    };
    (partials.iter().sum::<f64>() / triples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn dense_block() -> RatingsMatrix {
        // 6 users × 6 items, rank-1 structure: r(u, i) = (u % 3 + 1) + noise-free
        // pattern so a low-rank model can fit it well. Hold out (0, 5).
        let mut ratings = Vec::new();
        for u in 0..6i64 {
            for i in 0..6i64 {
                if u == 0 && i == 5 {
                    continue;
                }
                let r = ((u % 3) + 1) as f64 + ((i % 2) as f64) * 0.5;
                ratings.push(Rating::new(u, i, r));
            }
        }
        RatingsMatrix::from_ratings(ratings)
    }

    #[test]
    fn training_reduces_rmse_below_half_star() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 200,
                ..Default::default()
            },
        );
        assert!(
            model.final_rmse() < 0.25,
            "training RMSE {} too high",
            model.final_rmse()
        );
    }

    #[test]
    fn heldout_prediction_close_to_pattern() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 300,
                ..Default::default()
            },
        );
        // True value for (0, 5): (0 % 3 + 1) + (5 % 2)·0.5 = 1.5.
        let p = model.predict(0, 5).unwrap();
        assert!(
            (p - 1.5).abs() < 0.6,
            "held-out prediction {p} too far from 1.5"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SvdModel::train(dense_block(), SvdParams::default());
        let b = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(a.user_vector(0), b.user_vector(0));
        assert_eq!(a.item_vector(3), b.item_vector(3));
        let c = SvdModel::train(
            dense_block(),
            SvdParams {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a.user_vector(0), c.user_vector(0));
    }

    #[test]
    fn rated_pair_scores_own_rating() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(1, 1), 2.5); // (1%3+1) + 0.5
        assert_eq!(model.predict(1, 1), None);
    }

    #[test]
    fn unknown_ids_score_zero() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(999, 0), 0.0);
        assert_eq!(model.score(0, 999), 0.0);
        assert_eq!(model.predict(999, 0), None);
    }

    #[test]
    fn factor_tables_have_figure2_shape() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 3,
                ..Default::default()
            },
        );
        assert_eq!(model.factors(), 3);
        assert_eq!(model.user_vector(0).len(), 3);
        assert_eq!(model.item_vector(0).len(), 3);
    }

    #[test]
    fn empty_matrix_trains_without_panic() {
        let model = SvdModel::train(RatingsMatrix::default(), SvdParams::default());
        assert_eq!(model.final_rmse(), 0.0);
        assert_eq!(model.score(1, 1), 0.0);
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let params = SvdParams {
            factors: 8,
            epochs: 40,
            threads: 3,
            ..Default::default()
        };
        let a = SvdModel::train(dense_block(), params);
        let b = SvdModel::train(dense_block(), params);
        for u in 0..6 {
            assert_eq!(a.user_vector(u), b.user_vector(u), "user {u}");
        }
        for i in 0..6 {
            assert_eq!(a.item_vector(i), b.item_vector(i), "item {i}");
        }
        assert_eq!(a.final_rmse(), b.final_rmse());
    }

    #[test]
    fn parallel_training_converges() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 300,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(
            model.final_rmse() < 0.5,
            "parallel training RMSE {} too high",
            model.final_rmse()
        );
        let p = model.predict(0, 5).unwrap();
        assert!(
            (p - 1.5).abs() < 0.8,
            "held-out prediction {p} too far from 1.5"
        );
    }

    #[test]
    fn auto_threads_trains_without_panic() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                epochs: 10,
                threads: 0,
                ..Default::default()
            },
        );
        assert!(model.final_rmse().is_finite());
        for u in 0..6 {
            for i in 0..6 {
                assert!(model.score(u, i).is_finite());
            }
        }
    }

    #[test]
    fn thread_count_clamps_to_user_count() {
        // 6 users, 32 requested workers: shards degenerate to ≤ 1 user.
        let params = SvdParams {
            factors: 4,
            epochs: 20,
            threads: 32,
            ..Default::default()
        };
        let a = SvdModel::train(dense_block(), params);
        let b = SvdModel::train(dense_block(), params);
        assert_eq!(a.user_vector(0), b.user_vector(0));
        assert!(a.final_rmse().is_finite());
    }

    #[test]
    fn block_count_clamps_to_item_count() {
        // Many users, 2 items: the block grid must clamp B to the item
        // count so sub-epoch cells keep disjoint item blocks.
        let mut ratings = Vec::new();
        for u in 0..20i64 {
            ratings.push(Rating::new(u, 0, 2.0 + (u % 3) as f64));
            ratings.push(Rating::new(u, 1, 3.0));
        }
        let params = SvdParams {
            factors: 4,
            epochs: 15,
            threads: 8,
            ..Default::default()
        };
        let a = SvdModel::train(RatingsMatrix::from_ratings(ratings.clone()), params);
        let b = SvdModel::train(RatingsMatrix::from_ratings(ratings), params);
        assert!(a.final_rmse().is_finite());
        for u in 0..20 {
            assert_eq!(a.user_vector(u), b.user_vector(u), "user {u}");
        }
    }

    #[test]
    fn empty_matrix_parallel_trains_without_panic() {
        let model = SvdModel::train(
            RatingsMatrix::default(),
            SvdParams {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(model.final_rmse(), 0.0);
    }

    #[test]
    fn score_indexed_matches_score() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        let m = model.matrix().clone();
        for &user in m.user_ids() {
            for &item in m.item_ids() {
                let (u, i) = (m.user_idx(user).unwrap(), m.item_idx(item).unwrap());
                assert_eq!(model.score(user, item), model.score_indexed(u, i));
                assert_eq!(model.predict(user, item), model.predict_indexed(u, i));
            }
        }
    }

    #[test]
    fn score_block_matches_per_pair_dots() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 5,
                epochs: 10,
                ..Default::default()
            },
        );
        let n_items = model.matrix().n_items();
        let mut out = vec![0.0f32; n_items];
        for u in 0..model.matrix().n_users() {
            model.score_block(u, 0, &mut out);
            for (i, &s) in out.iter().enumerate() {
                let expected = kernels::dot(model.user_vector(u), model.item_vector(i));
                assert_eq!(s.to_bits(), expected.to_bits(), "user {u} item {i}");
            }
            // A block starting mid-range scores the same items.
            let mut tail = vec![0.0f32; n_items - 2];
            model.score_block(u, 2, &mut tail);
            for (j, &s) in tail.iter().enumerate() {
                assert_eq!(s.to_bits(), out[j + 2].to_bits());
            }
        }
    }

    #[test]
    fn score_unseen_matches_per_pair_predictions() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 6,
                epochs: 15,
                ..Default::default()
            },
        );
        let m = model.matrix().clone();
        let mut out = Vec::new();
        for u in 0..m.n_users() {
            out.clear();
            model.score_unseen_into(u, &mut out);
            let expected: Vec<(usize, f64)> = (0..m.n_items())
                .filter_map(|i| model.predict_indexed(u, i).map(|s| (i, s)))
                .collect();
            assert_eq!(out, expected, "user {u}");
        }
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = XorShift64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
