//! Regularized gradient-descent matrix factorization (the paper's "SVD").
//!
//! The paper (§IV-A3, Eq. 3) learns user factor vectors `p_u` and item
//! factor vectors `q_i` minimizing
//!
//! ```text
//! Σ_{(u,i)∈K} (r_ui − q_iᵀ p_u)² + λ(‖q_i‖² + ‖p_u‖²)
//! ```
//!
//! via stochastic gradient descent ("Regularized Gradient Descent Singular
//! Value Decomposition"). The learned tables are exactly the paper's
//! Figure 2 *User Factor Table* and *Item Factor Table*; prediction is the
//! dot product (Algorithm 2, line 7).
//!
//! A small deterministic xorshift PRNG seeds the factors so training is
//! reproducible for a given [`SvdParams::seed`].
//!
//! # Parallel training & determinism
//!
//! SGD is inherently sequential — every update reads the factors the
//! previous update wrote — so parallelizing it changes the update stream.
//! The contract here:
//!
//! * [`SvdParams::threads`] `= 1` (the **default**) runs the exact
//!   sequential SGD above, bit-reproducible against earlier releases.
//! * `threads > 1` (or `0` = all cores) opts into *block-partitioned* SGD:
//!   each epoch splits users into contiguous disjoint shards, one worker
//!   per shard. A worker updates its own users' `p_u` in place (no other
//!   worker touches them) while reading an epoch-start snapshot of the
//!   item factors; its `q_i` gradient contributions accumulate in a
//!   private delta buffer. After the epoch barrier the deltas are folded
//!   into the item factors in fixed shard order, and the training RMSE is
//!   measured by a parallel end-of-epoch pass (partial sums combined in
//!   slice order). The result is **deterministic for a fixed
//!   `(seed, threads)` pair** — no locks, no atomics, no data races — but
//!   it is a different (Jacobi-style delayed-update) stream than serial
//!   SGD, so models trained at different thread counts differ slightly.
//!
//! Note the serial path reports the paper-era RMSE (pre-update error
//! accumulated *during* the epoch) while the parallel path evaluates at
//! epoch end; both converge to the same notion as training settles.

use crate::model::TrainError;
use crate::parallel::effective_threads;
use crate::ratings::RatingsMatrix;
use recdb_guard::QueryGuard;

/// Hyper-parameters for SGD matrix factorization.
#[derive(Debug, Clone, Copy)]
pub struct SvdParams {
    /// Number of latent factors (the paper's Figure 2 shows 3; defaults
    /// follow common MovieLens practice).
    pub factors: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Regularization strength λ of Eq. 3.
    pub lambda: f64,
    /// Number of passes over the ratings.
    pub epochs: usize,
    /// PRNG seed for factor initialization.
    pub seed: u64,
    /// SGD worker threads. `1` (the default) is the exact sequential
    /// update stream; `> 1` (or `0` = all cores) opts into deterministic
    /// block-partitioned parallel SGD — see the module docs for the
    /// reproducibility contract.
    pub threads: usize,
}

impl Default for SvdParams {
    fn default() -> Self {
        SvdParams {
            factors: 32,
            learning_rate: 0.01,
            lambda: 0.05,
            epochs: 30,
            seed: 0x5EED_CAFE,
            threads: 1,
        }
    }
}

/// Deterministic xorshift64* generator for reproducible initialization.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A trained matrix-factorization model: the user and item factor tables.
#[derive(Debug, Clone)]
pub struct SvdModel {
    matrix: RatingsMatrix,
    /// `user_factors[u * factors ..][..factors]` = p_u.
    user_factors: Vec<f64>,
    /// `item_factors[i * factors ..][..factors]` = q_i.
    item_factors: Vec<f64>,
    factors: usize,
    params: SvdParams,
    /// Training RMSE after the final epoch (a health indicator).
    final_rmse: f64,
}

impl SvdModel {
    /// Train with SGD on the given ratings snapshot.
    pub fn train(matrix: RatingsMatrix, params: SvdParams) -> Self {
        Self::train_inner(matrix, params, None).expect("ungoverned SVD training cannot fail")
    }

    /// [`train`](Self::train) under a resource governor: the guard and
    /// the `algo::svd_epoch` fault site are evaluated before every epoch,
    /// so a deadline or injected failure aborts within one epoch.
    pub fn train_guarded(
        matrix: RatingsMatrix,
        params: SvdParams,
        guard: &QueryGuard,
    ) -> Result<Self, TrainError> {
        Self::train_inner(matrix, params, Some(guard))
    }

    fn train_inner(
        matrix: RatingsMatrix,
        params: SvdParams,
        governor: Option<&QueryGuard>,
    ) -> Result<Self, TrainError> {
        let f = params.factors.max(1);
        let n_users = matrix.n_users();
        let n_items = matrix.n_items();
        let mut rng = XorShift64::new(params.seed);
        // Initialize around sqrt(mean/f) so initial dot products land near
        // the rating scale, a standard Funk-SVD warm start.
        let mean = matrix.global_mean();
        let scale = if mean > 0.0 {
            (mean / f as f64).sqrt()
        } else {
            0.1
        };
        let mut user_factors: Vec<f64> = (0..n_users * f)
            .map(|_| scale * (0.5 + 0.5 * rng.next_f64()))
            .collect();
        let mut item_factors: Vec<f64> = (0..n_items * f)
            .map(|_| scale * (0.5 + 0.5 * rng.next_f64()))
            .collect();

        let threads = effective_threads(params.threads).min(n_users.max(1));
        let final_rmse = if threads <= 1 {
            sgd_serial(
                &matrix,
                &params,
                f,
                &mut rng,
                &mut user_factors,
                &mut item_factors,
                governor,
            )?
        } else {
            sgd_block_parallel(
                &matrix,
                &params,
                f,
                threads,
                &mut user_factors,
                &mut item_factors,
                governor,
            )?
        };
        Ok(SvdModel {
            matrix,
            user_factors,
            item_factors,
            factors: f,
            params,
            final_rmse,
        })
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// Hyper-parameters used for training.
    pub fn params(&self) -> &SvdParams {
        &self.params
    }

    /// Number of latent factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Training RMSE after the last epoch.
    pub fn final_rmse(&self) -> f64 {
        self.final_rmse
    }

    /// Number of ratings the model was built from.
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// The user factor vector p_u (paper Figure 2a), by dense index.
    pub fn user_vector(&self, u: usize) -> &[f64] {
        &self.user_factors[u * self.factors..(u + 1) * self.factors]
    }

    /// The item factor vector q_i (paper Figure 2b), by dense index.
    pub fn item_vector(&self, i: usize) -> &[f64] {
        &self.item_factors[i * self.factors..(i + 1) * self.factors]
    }

    /// Algorithm 2's per-pair score: dot product of the factor vectors;
    /// already-rated pairs return the user's own rating; unknown ids → 0.
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item)) else {
            return 0.0;
        };
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.dot(u, i)
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        Some(self.dot(u, i))
    }

    fn dot(&self, u: usize, i: usize) -> f64 {
        self.user_vector(u)
            .iter()
            .zip(self.item_vector(i))
            .map(|(a, b)| a * b)
            .sum()
    }
}

/// The exact sequential SGD loop (the historical update stream — `rng`
/// continues the initialization generator, so results are bit-identical to
/// pre-parallel releases). Returns the during-epoch training RMSE of the
/// final epoch.
#[allow(clippy::too_many_arguments)]
fn sgd_serial(
    matrix: &RatingsMatrix,
    params: &SvdParams,
    f: usize,
    rng: &mut XorShift64,
    user_factors: &mut [f64],
    item_factors: &mut [f64],
    governor: Option<&QueryGuard>,
) -> Result<f64, TrainError> {
    let triples: Vec<(usize, usize, f64)> = matrix.iter_dense().collect();
    let mut order: Vec<usize> = (0..triples.len()).collect();
    let mut final_rmse = 0.0;
    for _epoch in 0..params.epochs {
        if let Some(guard) = governor {
            recdb_fault::fail_point("algo::svd_epoch")?;
            guard.check()?;
        }
        // Fisher-Yates shuffle of the visit order each epoch.
        for k in (1..order.len()).rev() {
            let j = (rng.next_u64() % (k as u64 + 1)) as usize;
            order.swap(k, j);
        }
        let mut sq_err = 0.0;
        for &t in &order {
            let (u, i, r) = triples[t];
            let pu = u * f;
            let qi = i * f;
            let mut dot = 0.0;
            for k in 0..f {
                dot += user_factors[pu + k] * item_factors[qi + k];
            }
            let err = r - dot;
            sq_err += err * err;
            for k in 0..f {
                let puk = user_factors[pu + k];
                let qik = item_factors[qi + k];
                user_factors[pu + k] += params.learning_rate * (err * qik - params.lambda * puk);
                item_factors[qi + k] += params.learning_rate * (err * puk - params.lambda * qik);
            }
        }
        final_rmse = if triples.is_empty() {
            0.0
        } else {
            (sq_err / triples.len() as f64).sqrt()
        };
    }
    Ok(final_rmse)
}

/// Block-partitioned parallel SGD (module docs): contiguous user shards,
/// one worker each, frozen item factors per epoch, per-shard item-delta
/// accumulation merged in shard order. Deterministic for a fixed
/// `(seed, threads)` pair. Returns the end-of-epoch training RMSE after
/// the final epoch, measured by a parallel pass.
#[allow(clippy::too_many_arguments)]
fn sgd_block_parallel(
    matrix: &RatingsMatrix,
    params: &SvdParams,
    f: usize,
    threads: usize,
    user_factors: &mut [f64],
    item_factors: &mut [f64],
    governor: Option<&QueryGuard>,
) -> Result<f64, TrainError> {
    let n_users = matrix.n_users();
    let per = n_users.div_ceil(threads);
    let lr = params.learning_rate;
    let lambda = params.lambda;
    for epoch in 0..params.epochs {
        // Epoch-coordinator check: one guard/fault evaluation per epoch
        // barrier, so workers stay check-free and lock-free.
        if let Some(guard) = governor {
            recdb_fault::fail_point("algo::svd_epoch")?;
            guard.check()?;
        }
        let frozen_items = item_factors.to_owned();
        let deltas: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = user_factors
                .chunks_mut(per * f)
                .enumerate()
                .map(|(shard, chunk)| {
                    let frozen = &frozen_items;
                    s.spawn(move || {
                        let first_user = shard * per;
                        let shard_users = chunk.len() / f;
                        // Per-(epoch, shard) visit order: stochastic like
                        // serial SGD, but derived only from values fixed
                        // before the epoch starts, hence deterministic.
                        let mut rng = XorShift64::new(
                            params.seed
                                ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ ((shard as u64 + 1) << 32),
                        );
                        let mut order: Vec<usize> = (0..shard_users).collect();
                        for k in (1..order.len()).rev() {
                            let j = (rng.next_u64() % (k as u64 + 1)) as usize;
                            order.swap(k, j);
                        }
                        let mut delta = vec![0.0f64; frozen.len()];
                        for &local in &order {
                            let pu = local * f;
                            for &(i, r) in matrix.user_row(first_user + local) {
                                let qi = i * f;
                                let mut dot = 0.0;
                                for k in 0..f {
                                    dot += chunk[pu + k] * frozen[qi + k];
                                }
                                let err = r - dot;
                                for k in 0..f {
                                    let puk = chunk[pu + k];
                                    let qik = frozen[qi + k];
                                    chunk[pu + k] += lr * (err * qik - lambda * puk);
                                    delta[qi + k] += lr * (err * puk - lambda * qik);
                                }
                            }
                        }
                        delta
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("SGD shard worker panicked"))
                .collect()
        });
        // Fold item deltas in fixed shard order — float addition is not
        // associative, so the order must not depend on thread timing.
        for delta in &deltas {
            for (q, d) in item_factors.iter_mut().zip(delta) {
                *q += *d;
            }
        }
    }
    let triples: Vec<(usize, usize, f64)> = matrix.iter_dense().collect();
    Ok(parallel_rmse(
        &triples,
        user_factors,
        item_factors,
        f,
        threads,
    ))
}

/// RMSE over `triples` with the given factor tables, computed by `threads`
/// workers over contiguous slices; partial sums are combined in slice
/// order, so the result is deterministic for a fixed thread count.
fn parallel_rmse(
    triples: &[(usize, usize, f64)],
    user_factors: &[f64],
    item_factors: &[f64],
    f: usize,
    threads: usize,
) -> f64 {
    if triples.is_empty() {
        return 0.0;
    }
    let per = triples.len().div_ceil(threads.max(1));
    let partials: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = triples
            .chunks(per)
            .map(|slice| {
                s.spawn(move || {
                    let mut sq = 0.0;
                    for &(u, i, r) in slice {
                        let mut dot = 0.0;
                        for k in 0..f {
                            dot += user_factors[u * f + k] * item_factors[i * f + k];
                        }
                        let err = r - dot;
                        sq += err * err;
                    }
                    sq
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("RMSE worker panicked"))
            .collect()
    });
    (partials.iter().sum::<f64>() / triples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn dense_block() -> RatingsMatrix {
        // 6 users × 6 items, rank-1 structure: r(u, i) = (u % 3 + 1) + noise-free
        // pattern so a low-rank model can fit it well. Hold out (0, 5).
        let mut ratings = Vec::new();
        for u in 0..6i64 {
            for i in 0..6i64 {
                if u == 0 && i == 5 {
                    continue;
                }
                let r = ((u % 3) + 1) as f64 + ((i % 2) as f64) * 0.5;
                ratings.push(Rating::new(u, i, r));
            }
        }
        RatingsMatrix::from_ratings(ratings)
    }

    #[test]
    fn training_reduces_rmse_below_half_star() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 200,
                ..Default::default()
            },
        );
        assert!(
            model.final_rmse() < 0.25,
            "training RMSE {} too high",
            model.final_rmse()
        );
    }

    #[test]
    fn heldout_prediction_close_to_pattern() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 300,
                ..Default::default()
            },
        );
        // True value for (0, 5): (0 % 3 + 1) + (5 % 2)·0.5 = 1.5.
        let p = model.predict(0, 5).unwrap();
        assert!(
            (p - 1.5).abs() < 0.6,
            "held-out prediction {p} too far from 1.5"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SvdModel::train(dense_block(), SvdParams::default());
        let b = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(a.user_vector(0), b.user_vector(0));
        assert_eq!(a.item_vector(3), b.item_vector(3));
        let c = SvdModel::train(
            dense_block(),
            SvdParams {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a.user_vector(0), c.user_vector(0));
    }

    #[test]
    fn rated_pair_scores_own_rating() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(1, 1), 2.5); // (1%3+1) + 0.5
        assert_eq!(model.predict(1, 1), None);
    }

    #[test]
    fn unknown_ids_score_zero() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(999, 0), 0.0);
        assert_eq!(model.score(0, 999), 0.0);
        assert_eq!(model.predict(999, 0), None);
    }

    #[test]
    fn factor_tables_have_figure2_shape() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 3,
                ..Default::default()
            },
        );
        assert_eq!(model.factors(), 3);
        assert_eq!(model.user_vector(0).len(), 3);
        assert_eq!(model.item_vector(0).len(), 3);
    }

    #[test]
    fn empty_matrix_trains_without_panic() {
        let model = SvdModel::train(RatingsMatrix::default(), SvdParams::default());
        assert_eq!(model.final_rmse(), 0.0);
        assert_eq!(model.score(1, 1), 0.0);
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let params = SvdParams {
            factors: 8,
            epochs: 40,
            threads: 3,
            ..Default::default()
        };
        let a = SvdModel::train(dense_block(), params);
        let b = SvdModel::train(dense_block(), params);
        for u in 0..6 {
            assert_eq!(a.user_vector(u), b.user_vector(u), "user {u}");
        }
        for i in 0..6 {
            assert_eq!(a.item_vector(i), b.item_vector(i), "item {i}");
        }
        assert_eq!(a.final_rmse(), b.final_rmse());
    }

    #[test]
    fn parallel_training_converges() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 300,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(
            model.final_rmse() < 0.5,
            "parallel training RMSE {} too high",
            model.final_rmse()
        );
        let p = model.predict(0, 5).unwrap();
        assert!(
            (p - 1.5).abs() < 0.8,
            "held-out prediction {p} too far from 1.5"
        );
    }

    #[test]
    fn auto_threads_trains_without_panic() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                epochs: 10,
                threads: 0,
                ..Default::default()
            },
        );
        assert!(model.final_rmse().is_finite());
        for u in 0..6 {
            for i in 0..6 {
                assert!(model.score(u, i).is_finite());
            }
        }
    }

    #[test]
    fn thread_count_clamps_to_user_count() {
        // 6 users, 32 requested workers: shards degenerate to ≤ 1 user.
        let params = SvdParams {
            factors: 4,
            epochs: 20,
            threads: 32,
            ..Default::default()
        };
        let a = SvdModel::train(dense_block(), params);
        let b = SvdModel::train(dense_block(), params);
        assert_eq!(a.user_vector(0), b.user_vector(0));
        assert!(a.final_rmse().is_finite());
    }

    #[test]
    fn empty_matrix_parallel_trains_without_panic() {
        let model = SvdModel::train(
            RatingsMatrix::default(),
            SvdParams {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(model.final_rmse(), 0.0);
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = XorShift64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
