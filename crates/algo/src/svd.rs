//! Regularized gradient-descent matrix factorization (the paper's "SVD").
//!
//! The paper (§IV-A3, Eq. 3) learns user factor vectors `p_u` and item
//! factor vectors `q_i` minimizing
//!
//! ```text
//! Σ_{(u,i)∈K} (r_ui − q_iᵀ p_u)² + λ(‖q_i‖² + ‖p_u‖²)
//! ```
//!
//! via stochastic gradient descent ("Regularized Gradient Descent Singular
//! Value Decomposition"). The learned tables are exactly the paper's
//! Figure 2 *User Factor Table* and *Item Factor Table*; prediction is the
//! dot product (Algorithm 2, line 7).
//!
//! A small deterministic xorshift PRNG seeds the factors so training is
//! reproducible for a given [`SvdParams::seed`].

use crate::ratings::RatingsMatrix;

/// Hyper-parameters for SGD matrix factorization.
#[derive(Debug, Clone, Copy)]
pub struct SvdParams {
    /// Number of latent factors (the paper's Figure 2 shows 3; defaults
    /// follow common MovieLens practice).
    pub factors: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Regularization strength λ of Eq. 3.
    pub lambda: f64,
    /// Number of passes over the ratings.
    pub epochs: usize,
    /// PRNG seed for factor initialization.
    pub seed: u64,
}

impl Default for SvdParams {
    fn default() -> Self {
        SvdParams {
            factors: 32,
            learning_rate: 0.01,
            lambda: 0.05,
            epochs: 30,
            seed: 0x5EED_CAFE,
        }
    }
}

/// Deterministic xorshift64* generator for reproducible initialization.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A trained matrix-factorization model: the user and item factor tables.
#[derive(Debug, Clone)]
pub struct SvdModel {
    matrix: RatingsMatrix,
    /// `user_factors[u * factors ..][..factors]` = p_u.
    user_factors: Vec<f64>,
    /// `item_factors[i * factors ..][..factors]` = q_i.
    item_factors: Vec<f64>,
    factors: usize,
    params: SvdParams,
    /// Training RMSE after the final epoch (a health indicator).
    final_rmse: f64,
}

impl SvdModel {
    /// Train with SGD on the given ratings snapshot.
    pub fn train(matrix: RatingsMatrix, params: SvdParams) -> Self {
        let f = params.factors.max(1);
        let n_users = matrix.n_users();
        let n_items = matrix.n_items();
        let mut rng = XorShift64::new(params.seed);
        // Initialize around sqrt(mean/f) so initial dot products land near
        // the rating scale, a standard Funk-SVD warm start.
        let mean = matrix.global_mean();
        let scale = if mean > 0.0 { (mean / f as f64).sqrt() } else { 0.1 };
        let mut user_factors: Vec<f64> = (0..n_users * f)
            .map(|_| scale * (0.5 + 0.5 * rng.next_f64()))
            .collect();
        let mut item_factors: Vec<f64> = (0..n_items * f)
            .map(|_| scale * (0.5 + 0.5 * rng.next_f64()))
            .collect();

        let triples: Vec<(usize, usize, f64)> = matrix.iter_dense().collect();
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut final_rmse = 0.0;
        for _epoch in 0..params.epochs {
            // Fisher-Yates shuffle of the visit order each epoch.
            for k in (1..order.len()).rev() {
                let j = (rng.next_u64() % (k as u64 + 1)) as usize;
                order.swap(k, j);
            }
            let mut sq_err = 0.0;
            for &t in &order {
                let (u, i, r) = triples[t];
                let pu = u * f;
                let qi = i * f;
                let mut dot = 0.0;
                for k in 0..f {
                    dot += user_factors[pu + k] * item_factors[qi + k];
                }
                let err = r - dot;
                sq_err += err * err;
                for k in 0..f {
                    let puk = user_factors[pu + k];
                    let qik = item_factors[qi + k];
                    user_factors[pu + k] +=
                        params.learning_rate * (err * qik - params.lambda * puk);
                    item_factors[qi + k] +=
                        params.learning_rate * (err * puk - params.lambda * qik);
                }
            }
            final_rmse = if triples.is_empty() {
                0.0
            } else {
                (sq_err / triples.len() as f64).sqrt()
            };
        }
        SvdModel {
            matrix,
            user_factors,
            item_factors,
            factors: f,
            params,
            final_rmse,
        }
    }

    /// The training ratings snapshot.
    pub fn matrix(&self) -> &RatingsMatrix {
        &self.matrix
    }

    /// Hyper-parameters used for training.
    pub fn params(&self) -> &SvdParams {
        &self.params
    }

    /// Number of latent factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Training RMSE after the last epoch.
    pub fn final_rmse(&self) -> f64 {
        self.final_rmse
    }

    /// Number of ratings the model was built from.
    pub fn trained_on(&self) -> usize {
        self.matrix.n_ratings()
    }

    /// The user factor vector p_u (paper Figure 2a), by dense index.
    pub fn user_vector(&self, u: usize) -> &[f64] {
        &self.user_factors[u * self.factors..(u + 1) * self.factors]
    }

    /// The item factor vector q_i (paper Figure 2b), by dense index.
    pub fn item_vector(&self, i: usize) -> &[f64] {
        &self.item_factors[i * self.factors..(i + 1) * self.factors]
    }

    /// Algorithm 2's per-pair score: dot product of the factor vectors;
    /// already-rated pairs return the user's own rating; unknown ids → 0.
    pub fn score(&self, user: i64, item: i64) -> f64 {
        let (Some(u), Some(i)) = (self.matrix.user_idx(user), self.matrix.item_idx(item))
        else {
            return 0.0;
        };
        if let Some(r) = self.matrix.rating_at(u, i) {
            return r;
        }
        self.dot(u, i)
    }

    /// Predicted rating for an unseen pair only.
    pub fn predict(&self, user: i64, item: i64) -> Option<f64> {
        let (u, i) = (self.matrix.user_idx(user)?, self.matrix.item_idx(item)?);
        if self.matrix.rating_at(u, i).is_some() {
            return None;
        }
        Some(self.dot(u, i))
    }

    fn dot(&self, u: usize, i: usize) -> f64 {
        self.user_vector(u)
            .iter()
            .zip(self.item_vector(i))
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn dense_block() -> RatingsMatrix {
        // 6 users × 6 items, rank-1 structure: r(u, i) = (u % 3 + 1) + noise-free
        // pattern so a low-rank model can fit it well. Hold out (0, 5).
        let mut ratings = Vec::new();
        for u in 0..6i64 {
            for i in 0..6i64 {
                if u == 0 && i == 5 {
                    continue;
                }
                let r = ((u % 3) + 1) as f64 + ((i % 2) as f64) * 0.5;
                ratings.push(Rating::new(u, i, r));
            }
        }
        RatingsMatrix::from_ratings(ratings)
    }

    #[test]
    fn training_reduces_rmse_below_half_star() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 200,
                ..Default::default()
            },
        );
        assert!(
            model.final_rmse() < 0.25,
            "training RMSE {} too high",
            model.final_rmse()
        );
    }

    #[test]
    fn heldout_prediction_close_to_pattern() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 8,
                epochs: 300,
                ..Default::default()
            },
        );
        // True value for (0, 5): (0 % 3 + 1) + (5 % 2)·0.5 = 1.5.
        let p = model.predict(0, 5).unwrap();
        assert!(
            (p - 1.5).abs() < 0.6,
            "held-out prediction {p} too far from 1.5"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SvdModel::train(dense_block(), SvdParams::default());
        let b = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(a.user_vector(0), b.user_vector(0));
        assert_eq!(a.item_vector(3), b.item_vector(3));
        let c = SvdModel::train(
            dense_block(),
            SvdParams {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a.user_vector(0), c.user_vector(0));
    }

    #[test]
    fn rated_pair_scores_own_rating() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(1, 1), 2.5); // (1%3+1) + 0.5
        assert_eq!(model.predict(1, 1), None);
    }

    #[test]
    fn unknown_ids_score_zero() {
        let model = SvdModel::train(dense_block(), SvdParams::default());
        assert_eq!(model.score(999, 0), 0.0);
        assert_eq!(model.score(0, 999), 0.0);
        assert_eq!(model.predict(999, 0), None);
    }

    #[test]
    fn factor_tables_have_figure2_shape() {
        let model = SvdModel::train(
            dense_block(),
            SvdParams {
                factors: 3,
                ..Default::default()
            },
        );
        assert_eq!(model.factors(), 3);
        assert_eq!(model.user_vector(0).len(), 3);
        assert_eq!(model.item_vector(0).len(), 3);
    }

    #[test]
    fn empty_matrix_trains_without_panic() {
        let model = SvdModel::train(RatingsMatrix::default(), SvdParams::default());
        assert_eq!(model.final_rmse(), 0.0);
        assert_eq!(model.score(1, 1), 0.0);
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = XorShift64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
