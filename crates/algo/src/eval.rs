//! Hold-out accuracy evaluation (RMSE / MAE).
//!
//! The paper explicitly does *not* claim accuracy improvements ("RecDB does
//! not introduce a novel recommendation model with higher accuracy"), but a
//! credible implementation must demonstrate that its predictors behave like
//! the textbook algorithms. This module provides a seeded train/test split
//! and the two standard error metrics.

use crate::model::{Algorithm, RecModel, TrainConfig};
use crate::ratings::{Rating, RatingsMatrix};

/// Accuracy of a model on a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Root mean squared error over covered pairs.
    pub rmse: f64,
    /// Mean absolute error over covered pairs.
    pub mae: f64,
    /// Fraction of test pairs the model could score at all (both ids known
    /// to the model and a non-trivial prediction available).
    pub coverage: f64,
    /// Number of test pairs evaluated.
    pub n_test: usize,
}

/// Split ratings into `(train, test)` with `test_fraction` of observations
/// held out, deterministically for a given `seed`.
pub fn split(ratings: &[Rating], test_fraction: f64, seed: u64) -> (Vec<Rating>, Vec<Rating>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut state = seed.max(1);
    for &r in ratings {
        // xorshift64* per observation.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let roll = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        if roll < test_fraction {
            test.push(r);
        } else {
            train.push(r);
        }
    }
    (train, test)
}

/// Train on `train`, score every `test` pair, and report error metrics.
///
/// Pairs the model cannot score (unknown user/item or no neighborhood
/// signal) are excluded from the error average and reflected in
/// [`Accuracy::coverage`].
pub fn evaluate(
    algorithm: Algorithm,
    train: Vec<Rating>,
    test: &[Rating],
    config: &TrainConfig,
) -> Accuracy {
    let model = RecModel::train(algorithm, RatingsMatrix::from_ratings(train), config);
    evaluate_model(&model, test)
}

/// Score every `test` pair with an already-trained model.
///
/// Ids are resolved to dense indexes once per pair and scored through the
/// indexed fast path ([`RecModel::predict_indexed`]), so the hot loop does
/// no redundant HashMap lookups inside the model.
pub fn evaluate_model(model: &RecModel, test: &[Rating]) -> Accuracy {
    let matrix = model.matrix();
    let mut sq = 0.0;
    let mut abs = 0.0;
    let mut covered = 0usize;
    for r in test {
        let (Some(u), Some(i)) = (matrix.user_idx(r.user), matrix.item_idx(r.item)) else {
            continue;
        };
        if let Some(p) = model.predict_indexed(u, i) {
            let err = p - r.value;
            sq += err * err;
            abs += err.abs();
            covered += 1;
        }
    }
    let n_test = test.len();
    if covered == 0 {
        return Accuracy {
            rmse: f64::NAN,
            mae: f64::NAN,
            coverage: 0.0,
            n_test,
        };
    }
    Accuracy {
        rmse: (sq / covered as f64).sqrt(),
        mae: abs / covered as f64,
        coverage: covered as f64 / n_test.max(1) as f64,
        n_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::SvdParams;

    /// Structured synthetic ratings: user `u` likes item `i` as
    /// `3 + sin(u·i)`-ish deterministic pattern, clamped to [1, 5].
    fn structured(n_users: i64, n_items: i64) -> Vec<Rating> {
        let mut out = Vec::new();
        for u in 0..n_users {
            for i in 0..n_items {
                // Leave some sparsity.
                if (u * 7 + i * 3) % 4 == 0 {
                    continue;
                }
                let base = 1.0 + ((u % 5) as f64 + (i % 5) as f64) / 2.0;
                out.push(Rating::new(u, i, base.clamp(1.0, 5.0)));
            }
        }
        out
    }

    #[test]
    fn split_is_deterministic_and_proportional() {
        let data = structured(20, 20);
        let (tr1, te1) = split(&data, 0.25, 42);
        let (tr2, te2) = split(&data, 0.25, 42);
        assert_eq!(te1.len(), te2.len());
        assert_eq!(tr1.len(), tr2.len());
        let frac = te1.len() as f64 / data.len() as f64;
        assert!((frac - 0.25).abs() < 0.08, "held out {frac}");
        let (_, te3) = split(&data, 0.25, 43);
        assert_ne!(te1.len() + te1.len(), te3.len() + te1.len() + 1); // trivially true; seeds differ below
        assert!(
            te1.iter().map(|r| (r.user, r.item)).collect::<Vec<_>>()
                != te3.iter().map(|r| (r.user, r.item)).collect::<Vec<_>>()
                || te1.len() != te3.len()
        );
    }

    #[test]
    fn itemcf_beats_trivial_error_on_structured_data() {
        let data = structured(30, 30);
        let (train, test) = split(&data, 0.2, 7);
        let acc = evaluate(Algorithm::ItemCosCF, train, &test, &TrainConfig::default());
        assert!(acc.coverage > 0.9, "coverage {}", acc.coverage);
        // Ratings span [1, 5]; random guessing RMSE ≈ 1.6. The pattern is
        // learnable, so CF should do much better.
        assert!(acc.rmse < 1.0, "ItemCosCF RMSE {}", acc.rmse);
        assert!(acc.mae <= acc.rmse + 1e-12, "MAE bounded by RMSE");
    }

    #[test]
    fn svd_learns_structured_data() {
        let data = structured(30, 30);
        let (train, test) = split(&data, 0.2, 7);
        let acc = evaluate(
            Algorithm::Svd,
            train,
            &test,
            &TrainConfig {
                svd: SvdParams {
                    factors: 8,
                    epochs: 60,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert!(acc.coverage > 0.95);
        assert!(acc.rmse < 1.0, "SVD RMSE {}", acc.rmse);
    }

    #[test]
    fn empty_test_set_yields_nan_metrics() {
        let data = structured(5, 5);
        let acc = evaluate(Algorithm::ItemCosCF, data, &[], &TrainConfig::default());
        assert!(acc.rmse.is_nan());
        assert_eq!(acc.coverage, 0.0);
        assert_eq!(acc.n_test, 0);
    }

    #[test]
    fn uncoverable_pairs_lower_coverage() {
        let train = vec![Rating::new(1, 1, 5.0), Rating::new(1, 2, 4.0)];
        // Test on an unknown user: nothing coverable.
        let test = vec![Rating::new(99, 1, 3.0)];
        let acc = evaluate(Algorithm::ItemCosCF, train, &test, &TrainConfig::default());
        assert_eq!(acc.coverage, 0.0);
    }
}
