//! Property-based tests for the recommendation algorithms: similarity
//! bounds, matrix invariants, and predictor sanity on arbitrary rating
//! data.

use proptest::prelude::*;
use recdb_algo::model::TrainConfig;
use recdb_algo::neighborhood::{build_item_neighborhood, build_user_neighborhood};
use recdb_algo::similarity::{co_rated_sums, similarity, Similarity};
use recdb_algo::{
    Algorithm, ItemCfModel, NeighborhoodParams, Rating, RatingsMatrix, SvdModel, SvdParams,
};
use std::collections::HashMap;

fn ratings_strategy() -> impl Strategy<Value = Vec<Rating>> {
    proptest::collection::vec((0i64..15, 0i64..15, 1u8..=10), 1..80).prop_map(|v| {
        v.into_iter()
            .map(|(u, i, r)| Rating::new(u, i, r as f64 / 2.0))
            .collect()
    })
}

fn sparse_vec_strategy() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::btree_map(0usize..30, -5.0f64..5.0, 0..15)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    /// Cosine and Pearson over co-rated dimensions always land in
    /// [-1, 1] (Cauchy–Schwarz holds on the restricted vectors too).
    #[test]
    fn similarity_is_bounded(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        for measure in [Similarity::Cosine, Similarity::Pearson] {
            if let Some(s) = similarity(&a, &b, measure) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "{measure:?} = {s}");
                prop_assert!(s.is_finite());
            }
        }
    }

    /// Similarity is symmetric, and self-similarity of a non-degenerate
    /// vector is 1 under cosine.
    #[test]
    fn similarity_symmetry_and_reflexivity(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        for measure in [Similarity::Cosine, Similarity::Pearson] {
            prop_assert_eq!(similarity(&a, &b, measure), similarity(&b, &a, measure));
        }
        if a.iter().any(|&(_, v)| v != 0.0) {
            let s = similarity(&a, &a, Similarity::Cosine).unwrap();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// The co-rated accumulator counts exactly the common indices.
    #[test]
    fn co_rated_counts_intersection(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        let sums = co_rated_sums(&a, &b);
        let set_a: std::collections::BTreeSet<usize> = a.iter().map(|&(i, _)| i).collect();
        let set_b: std::collections::BTreeSet<usize> = b.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(sums.n, set_a.intersection(&set_b).count());
    }

    /// RatingsMatrix agrees with a last-wins HashMap reference model.
    #[test]
    fn matrix_matches_hashmap_model(ratings in ratings_strategy()) {
        let m = RatingsMatrix::from_ratings(ratings.clone());
        let mut model: HashMap<(i64, i64), f64> = HashMap::new();
        for r in &ratings {
            model.insert((r.user, r.item), r.value);
        }
        prop_assert_eq!(m.n_ratings(), model.len());
        for (&(u, i), &v) in &model {
            prop_assert_eq!(m.rating_of(u, i), Some(v));
        }
        // Row and column views are consistent transposes.
        for u_idx in 0..m.n_users() {
            for &(i_idx, r) in m.user_row(u_idx) {
                let col = m.item_col(i_idx);
                let pos = col.binary_search_by_key(&u_idx, |&(u, _)| u).unwrap();
                prop_assert_eq!(col[pos].1, r);
            }
        }
    }

    /// With strictly positive ratings, cosine item-item similarities are
    /// non-negative, so the Eq. 2 prediction is a convex combination: it
    /// must lie within the user's own rating range.
    #[test]
    fn itemcf_prediction_bounded_by_user_range(ratings in ratings_strategy()) {
        let matrix = RatingsMatrix::from_ratings(ratings);
        let model = ItemCfModel::train(matrix.clone(), NeighborhoodParams::cosine());
        for &user in matrix.user_ids() {
            let u = matrix.user_idx(user).unwrap();
            let row = matrix.user_row(u);
            let lo = row.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
            let hi = row.iter().map(|&(_, r)| r).fold(f64::NEG_INFINITY, f64::max);
            for &item in matrix.item_ids() {
                if let Some(p) = model.predict(user, item) {
                    prop_assert!(
                        p >= lo - 1e-9 && p <= hi + 1e-9,
                        "user {user} item {item}: {p} outside [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    /// Every algorithm trains without panicking on arbitrary data, scores
    /// are finite, and rated pairs pass through verbatim.
    #[test]
    fn all_algorithms_total_on_arbitrary_data(ratings in ratings_strategy()) {
        let config = TrainConfig {
            svd: SvdParams { epochs: 2, factors: 4, ..SvdParams::default() },
            ..TrainConfig::default()
        };
        for algo in Algorithm::ALL {
            let matrix = RatingsMatrix::from_ratings(ratings.clone());
            let model = recdb_algo::RecModel::train(algo, matrix.clone(), &config);
            for &u in matrix.user_ids().iter().take(5) {
                for &i in matrix.item_ids().iter().take(5) {
                    let s = model.score(u, i);
                    prop_assert!(s.is_finite(), "{algo} score({u},{i}) = {s}");
                    if let Some(r) = matrix.rating_of(u, i) {
                        prop_assert_eq!(s, r, "{} must echo stored rating", algo);
                    }
                }
            }
        }
    }

    /// Neighborhood tables are symmetric with matching scores, and
    /// truncation keeps a subset of the full table's edges.
    #[test]
    fn neighborhood_symmetry_and_truncation(ratings in ratings_strategy(), k in 1usize..6) {
        let matrix = RatingsMatrix::from_ratings(ratings);
        for table in [
            build_item_neighborhood(&matrix, &NeighborhoodParams::cosine()),
            build_user_neighborhood(&matrix, &NeighborhoodParams::cosine()),
        ] {
            for e in 0..table.len() {
                for &(nb, s) in table.neighbors(e) {
                    prop_assert_eq!(table.sim(nb, e), Some(s));
                    prop_assert!(nb != e, "no self-edges");
                }
            }
        }
        let full = build_item_neighborhood(&matrix, &NeighborhoodParams::cosine());
        let trunc = build_item_neighborhood(
            &matrix,
            &NeighborhoodParams { max_neighbors: Some(k), ..NeighborhoodParams::cosine() },
        );
        for e in 0..trunc.len() {
            prop_assert!(trunc.neighbors(e).len() <= k);
            for &(nb, s) in trunc.neighbors(e) {
                prop_assert_eq!(full.sim(e, nb), Some(s), "truncated edge must exist in full");
            }
        }
    }

    /// SVD training is deterministic for a fixed seed.
    #[test]
    fn svd_deterministic(ratings in ratings_strategy(), seed in 1u64..1000) {
        let params = SvdParams { epochs: 3, factors: 4, seed, ..SvdParams::default() };
        let a = SvdModel::train(RatingsMatrix::from_ratings(ratings.clone()), params);
        let b = SvdModel::train(RatingsMatrix::from_ratings(ratings.clone()), params);
        let matrix = RatingsMatrix::from_ratings(ratings);
        for &u in matrix.user_ids().iter().take(3) {
            for &i in matrix.item_ids().iter().take(3) {
                prop_assert_eq!(a.score(u, i), b.score(u, i));
            }
        }
    }

    /// The CSR views round-trip the jagged rows exactly: same coordinates
    /// in the same order, and — because ratings are half-star values —
    /// the f32 cast is lossless.
    #[test]
    fn csr_round_trips_jagged_rows(ratings in ratings_strategy()) {
        let m = RatingsMatrix::from_ratings(ratings);
        prop_assert_eq!(m.user_csr().nnz(), m.n_ratings());
        prop_assert_eq!(m.item_csr().nnz(), m.n_ratings());
        prop_assert_eq!(m.user_csr().n_rows(), m.n_users());
        prop_assert_eq!(m.item_csr().n_rows(), m.n_items());
        for u in 0..m.n_users() {
            let (cols, vals) = m.user_csr().row(u);
            let jagged = m.user_row(u);
            prop_assert_eq!(cols.len(), jagged.len());
            for (k, &(i, r)) in jagged.iter().enumerate() {
                prop_assert_eq!(cols[k] as usize, i);
                prop_assert_eq!(f64::from(vals[k]), r, "half-star ratings are f32-exact");
            }
        }
        for i in 0..m.n_items() {
            let (rows, vals) = m.item_csr().row(i);
            let jagged = m.item_col(i);
            prop_assert_eq!(rows.len(), jagged.len());
            for (k, &(u, r)) in jagged.iter().enumerate() {
                prop_assert_eq!(rows[k] as usize, u);
                prop_assert_eq!(f64::from(vals[k]), r);
            }
        }
    }

    /// The block-sequential parallel SGD schedule is deterministic: a
    /// fixed (seed, threads) pair yields bit-identical factor matrices
    /// across runs, at every thread count.
    #[test]
    fn svd_block_schedule_deterministic(
        ratings in ratings_strategy(),
        seed in 1u64..500,
        threads in 2usize..6,
    ) {
        let params = SvdParams { epochs: 3, factors: 4, seed, threads, ..SvdParams::default() };
        let a = SvdModel::train(RatingsMatrix::from_ratings(ratings.clone()), params);
        let b = SvdModel::train(RatingsMatrix::from_ratings(ratings.clone()), params);
        let matrix = RatingsMatrix::from_ratings(ratings);
        for u in 0..matrix.n_users() {
            let (av, bv) = (a.user_vector(u), b.user_vector(u));
            prop_assert_eq!(av.len(), bv.len());
            for (x, y) in av.iter().zip(bv) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "user {} factors diverged", u);
            }
        }
        for i in 0..matrix.n_items() {
            let (av, bv) = (a.item_vector(i), b.item_vector(i));
            prop_assert_eq!(av.len(), bv.len());
            for (x, y) in av.iter().zip(bv) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "item {} factors diverged", i);
            }
        }
    }
}
