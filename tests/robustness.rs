//! Robustness acceptance tests: resource governance, cancellation,
//! panic containment, and deterministic fault injection, all driven
//! through the public [`RecDb`] SQL surface.
//!
//! Every test that arms a fault site holds [`recdb::fault::exclusive`]
//! for its whole body and clears the registry on entry and exit — the
//! registry is process-global and the test harness runs in parallel.

use recdb::core::{EngineError, GovernorConfig, QueryGuard, RecDb, RecDbConfig};
use recdb::exec::ExecError;
use recdb::fault;
use std::time::Duration;

const RECOMMEND_SQL: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";

const CREATE_REC_SQL: &str = "CREATE RECOMMENDER MovieRec ON ratings \
     USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF";

/// A deterministic ratings table: 6 users × 8 items, one gap per user so
/// every user has something left to recommend.
fn seed_ratings(db: &mut RecDb) {
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    let mut rows = Vec::new();
    for uid in 1..=6i64 {
        for iid in 1..=8i64 {
            if (uid + iid) % 7 == 0 {
                continue; // leave unrated items to recommend
            }
            let rating = 1.0 + ((uid * 3 + iid * 5) % 9) as f64 / 2.0;
            rows.push(format!("({uid}, {iid}, {rating:.1})"));
        }
    }
    let sql = format!("INSERT INTO ratings VALUES {}", rows.join(", "));
    db.execute(&sql).expect("seed inserts");
}

fn seeded_db() -> RecDb {
    let mut db = RecDb::new();
    seed_ratings(&mut db);
    db
}

fn ratings_count(db: &mut RecDb) -> usize {
    db.query("SELECT uid FROM ratings")
        .expect("count query")
        .len()
}

// ---------------------------------------------------------------------
// Governor: deadlines, budgets, cancellation
// ---------------------------------------------------------------------

/// ISSUE acceptance: a RECOMMEND query issued with an already-expired
/// deadline returns `Cancelled` — it neither hangs nor panics.
#[test]
fn zero_deadline_recommend_is_cancelled() {
    let db = seeded_db();
    db.execute(CREATE_REC_SQL).expect("create recommender");
    let guard = QueryGuard::with_limits(Some(Duration::ZERO), None, None);
    match db.query_with_guard(RECOMMEND_SQL, guard) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The engine keeps serving after the cancellation.
    assert!(!db
        .query(RECOMMEND_SQL)
        .expect("ungoverned retry")
        .is_empty());
}

/// A zero deadline also stops plain scans and model builds.
#[test]
fn zero_deadline_stops_scans_and_builds() {
    let db = seeded_db();
    let expired = || QueryGuard::with_limits(Some(Duration::ZERO), None, None);
    match db.query_with_guard("SELECT uid FROM ratings", expired()) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("scan: expected Cancelled, got {other:?}"),
    }
    match db.execute_with_guard(CREATE_REC_SQL, expired()) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("build: expected Cancelled, got {other:?}"),
    }
    // The cancelled build must not have registered a recommender.
    assert!(db.recommender("MovieRec").is_none());
    db.execute(CREATE_REC_SQL)
        .expect("unlimited build succeeds");
}

#[test]
fn row_budget_trips_resource_exhausted() {
    let db = seeded_db();
    let guard = QueryGuard::with_limits(None, Some(3), None);
    match db.query_with_guard("SELECT uid FROM ratings", guard) {
        Err(EngineError::ResourceExhausted {
            resource: "rows",
            budget: 3,
            ..
        }) => {}
        other => panic!("expected rows ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn mem_budget_trips_on_sort_buffering() {
    let db = seeded_db();
    let guard = QueryGuard::with_limits(None, None, Some(16));
    match db.query_with_guard("SELECT uid FROM ratings ORDER BY ratingval DESC", guard) {
        Err(EngineError::ResourceExhausted {
            resource: "memory", ..
        }) => {}
        other => panic!("expected memory ResourceExhausted, got {other:?}"),
    }
}

/// Engine-wide defaults from `RecDbConfig.governor` apply to plain
/// `query()` calls with no per-call guard.
#[test]
fn config_level_row_budget_governs_plain_queries() {
    let config = RecDbConfig {
        governor: GovernorConfig {
            row_budget: Some(4),
            ..GovernorConfig::default()
        },
        ..RecDbConfig::default()
    };
    let mut db = RecDb::with_config(config);
    seed_ratings(&mut db); // DDL + INSERT charge no row work
    match db.query("SELECT uid FROM ratings") {
        Err(EngineError::ResourceExhausted {
            resource: "rows", ..
        }) => {}
        other => panic!("expected rows ResourceExhausted, got {other:?}"),
    }
}

/// A cancel handle flipped from another thread stops the statement.
#[test]
fn cross_thread_cancel_stops_statement() {
    let db = seeded_db();
    let guard = QueryGuard::unlimited();
    let handle = guard.cancel_handle();
    std::thread::spawn(move || handle.cancel())
        .join()
        .expect("cancel thread");
    match db.query_with_guard("SELECT uid FROM ratings", guard) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Fault injection: every site unwinds cleanly and the engine survives
// ---------------------------------------------------------------------

/// ISSUE acceptance: an injected fault in `core::materialize_worker`
/// mid-`CREATE RECOMMENDER` fails the statement, leaves the engine
/// serving and the catalog uncorrupted, and the retried CREATE succeeds
/// (the site disarms on trigger, modelling a transient fault).
#[test]
fn faulted_create_recommender_is_atomic_and_retryable() {
    let _gate = fault::exclusive();
    fault::clear();
    let mut db = seeded_db();
    let rows_before = ratings_count(&mut db);

    fault::arm_error("core::materialize_worker", 1);
    match db.execute(CREATE_REC_SQL) {
        Err(EngineError::Exec(ExecError::FaultInjected(e))) => {
            assert_eq!(e.site, "core::materialize_worker");
        }
        other => panic!("expected FaultInjected, got {other:?}"),
    }
    assert_eq!(fault::triggered("core::materialize_worker"), 1);

    // No half-built recommender was published and the catalog is intact.
    assert!(db.recommender("MovieRec").is_none());
    assert!(db.recommender_names().is_empty());
    assert_eq!(ratings_count(&mut db), rows_before);

    // The transient fault disarmed itself: the retry succeeds end to end.
    db.execute(CREATE_REC_SQL).expect("retried CREATE succeeds");
    assert!(db.recommender("MovieRec").is_some());
    assert!(!db.query(RECOMMEND_SQL).expect("recommend").is_empty());
    fault::clear();
}

/// A faulted *rebuild* (N% maintenance) keeps the previous model
/// serving: the staged swap publishes nothing on failure.
#[test]
fn faulted_rebuild_keeps_previous_model_serving() {
    let _gate = fault::exclusive();
    fault::clear();
    let config = RecDbConfig {
        maintenance_threshold_pct: 1.0, // rebuild on nearly every insert
        ..RecDbConfig::default()
    };
    let mut db = RecDb::with_config(config);
    seed_ratings(&mut db);
    db.execute(CREATE_REC_SQL).expect("create recommender");
    let baseline = db.query(RECOMMEND_SQL).expect("baseline recommend");

    fault::arm_error("core::materialize_worker", 1);
    let maintained = db.execute("INSERT INTO ratings VALUES (1, 7, 4.5)");
    assert!(maintained.is_err(), "maintenance should hit the fault");

    // The old model still answers; the engine did not lose the
    // recommender or corrupt its index.
    assert!(db.recommender("MovieRec").is_some());
    assert_eq!(
        db.query(RECOMMEND_SQL)
            .expect("recommend after fault")
            .len(),
        baseline.len()
    );
    // Disarmed: the next maintenance-triggering insert rebuilds fine.
    db.execute("INSERT INTO ratings VALUES (2, 5, 3.5)")
        .expect("rebuild after disarm");
    fault::clear();
}

/// Error-mode faults at every site surface as `Err` through the public
/// SQL API and leave the engine usable; the retry succeeds.
#[test]
fn every_fault_site_unwinds_cleanly() {
    let _gate = fault::exclusive();
    fault::clear();

    // storage::heap_append — INSERT fails, then works once disarmed.
    let mut db = seeded_db();
    let before = ratings_count(&mut db);
    fault::arm_error("storage::heap_append", 1);
    assert!(db
        .execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .is_err());
    assert_eq!(ratings_count(&mut db), before);
    db.execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .expect("insert after disarm");
    assert_eq!(ratings_count(&mut db), before + 1);

    // exec::sort_materialize — ORDER BY fails, then works.
    fault::arm_error("exec::sort_materialize", 1);
    assert!(db
        .query("SELECT uid FROM ratings ORDER BY ratingval DESC")
        .is_err());
    db.query("SELECT uid FROM ratings ORDER BY ratingval DESC")
        .expect("sort after disarm");

    // algo::neighborhood_build — CF model build fails, then works.
    fault::arm_error("algo::neighborhood_build", 1);
    assert!(db.execute(CREATE_REC_SQL).is_err());
    assert!(db.recommender("MovieRec").is_none());
    db.execute(CREATE_REC_SQL).expect("CF build after disarm");

    // algo::svd_epoch — SVD training fails mid-epoch, then works.
    let create_svd = "CREATE RECOMMENDER SvdRec ON ratings USERS FROM uid \
         ITEMS FROM iid RATINGS FROM ratingval USING SVD";
    fault::arm_error("algo::svd_epoch", 2);
    assert!(db.execute(create_svd).is_err());
    assert!(db.recommender("SvdRec").is_none());
    db.execute(create_svd).expect("SVD build after disarm");

    fault::clear();
}

/// Panic-mode faults are contained at the engine boundary as
/// `EngineError::Internal`; the engine keeps serving afterwards.
#[test]
fn panic_faults_are_contained_as_internal_errors() {
    let _gate = fault::exclusive();
    fault::clear();
    let mut db = seeded_db();
    let before = ratings_count(&mut db);

    fault::arm_panic("storage::heap_append", 1);
    match db.execute("INSERT INTO ratings VALUES (3, 8, 1.5)") {
        Err(EngineError::Internal(msg)) => {
            assert!(msg.contains("storage::heap_append"), "got: {msg}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(ratings_count(&mut db), before, "engine still serving");

    // A panic mid-build must not publish a recommender either.
    fault::arm_panic("core::materialize_worker", 1);
    match db.execute(CREATE_REC_SQL) {
        Err(EngineError::Internal(_)) => {}
        other => panic!("expected Internal, got {other:?}"),
    }
    assert!(db.recommender("MovieRec").is_none());
    db.execute(CREATE_REC_SQL)
        .expect("create after panic fault");
    assert!(!db.query(RECOMMEND_SQL).expect("recommend").is_empty());
    fault::clear();
}

/// Error-mode faults at the transaction sites abort the transaction
/// cleanly and leave the engine serving.
#[test]
fn txn_fault_sites_abort_cleanly() {
    let _gate = fault::exclusive();
    fault::clear();
    let mut db = seeded_db();
    let before = ratings_count(&mut db);

    // txn::lock_acquire — the write statement inside an explicit
    // transaction fails to lock; the whole transaction aborts and the
    // session is back in autocommit.
    fault::arm_error("txn::lock_acquire", 1);
    db.execute("BEGIN").expect("begin");
    assert!(db
        .execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .is_err());
    match db.execute("COMMIT") {
        Err(EngineError::NoActiveTransaction) => {}
        other => panic!("txn aborted, COMMIT should have nothing: {other:?}"),
    }
    assert_eq!(ratings_count(&mut db), before);

    // txn::commit — the commit marker is poisoned, so the transaction
    // rolls back instead; its writes never become visible. Disarmed,
    // the retry commits.
    fault::arm_error("txn::commit", 1);
    db.execute("BEGIN").expect("begin");
    db.execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .expect("insert inside txn");
    assert!(db.execute("COMMIT").is_err());
    assert_eq!(ratings_count(&mut db), before, "faulted commit rolled back");
    db.execute("BEGIN").expect("begin");
    db.execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .expect("insert inside txn");
    db.execute("COMMIT").expect("commit after disarm");
    assert_eq!(ratings_count(&mut db), before + 1);

    // txn::rollback — the undo still runs (it must never be skipped);
    // only the reported outcome is poisoned.
    fault::arm_error("txn::rollback", 1);
    db.execute("BEGIN").expect("begin");
    db.execute("INSERT INTO ratings VALUES (2, 7, 2.0)")
        .expect("insert inside txn");
    assert!(db.execute("ROLLBACK").is_err());
    assert_eq!(
        ratings_count(&mut db),
        before + 1,
        "rollback still undid the insert"
    );
    db.execute("BEGIN").expect("session back in autocommit");
    db.execute("ROLLBACK").expect("clean rollback");
    fault::clear();
}

// ---------------------------------------------------------------------
// Seeded sweep (CI matrix drives RECDB_FAULT_SEED over [1, 7, 42])
// ---------------------------------------------------------------------

const ALL_SITES: [&str; 8] = [
    "storage::heap_append",
    "core::materialize_worker",
    "algo::svd_epoch",
    "algo::neighborhood_build",
    "exec::sort_materialize",
    "txn::lock_acquire",
    "txn::commit",
    "txn::rollback",
];

fn sweep_seed() -> u64 {
    std::env::var("RECDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Run the full workload with one site armed at a seed-derived hit and
/// prove that whatever fails, the engine ends the workload consistent.
#[test]
fn seeded_fault_sweep_never_corrupts_the_engine() {
    let _gate = fault::exclusive();
    let seed = sweep_seed();
    for site in ALL_SITES {
        fault::clear();
        let mut db = seeded_db(); // seed before arming: faults target the workload
        let nth = fault::schedule_nth(seed, site, 4);
        fault::arm_error(site, nth);

        // Each step may fail (depending on where the schedule lands) but
        // must never panic or wedge the engine.
        let _ = db.execute(CREATE_REC_SQL);
        let _ = db.execute(
            "CREATE RECOMMENDER SvdRec ON ratings USERS FROM uid \
             ITEMS FROM iid RATINGS FROM ratingval USING SVD",
        );
        let _ = db.execute("INSERT INTO ratings VALUES (4, 3, 2.5)");
        let _ = db.execute("BEGIN");
        let _ = db.execute("INSERT INTO ratings VALUES (5, 2, 4.0)");
        let _ = db.execute("COMMIT");
        let _ = db.execute("BEGIN");
        let _ = db.execute("INSERT INTO ratings VALUES (6, 1, 3.5)");
        let _ = db.execute("ROLLBACK");
        let _ = db.query("SELECT uid FROM ratings ORDER BY ratingval DESC");
        let _ = db.query(RECOMMEND_SQL);

        fault::clear();
        // Post-sweep invariants: catalog answers, and a fresh build over
        // the same (now fault-free) engine completes.
        assert!(
            ratings_count(&mut db) > 0,
            "seed {seed} site {site}: catalog wedged"
        );
        if db.recommender("MovieRec").is_none() {
            db.execute(CREATE_REC_SQL)
                .unwrap_or_else(|e| panic!("seed {seed} site {site}: rebuild failed: {e}"));
        }
        assert!(
            !db.query(RECOMMEND_SQL)
                .unwrap_or_else(|e| panic!("seed {seed} site {site}: recommend failed: {e}"))
                .is_empty(),
            "seed {seed} site {site}: no recommendations"
        );
    }
}

// ---------------------------------------------------------------------
// Session teardown: abandoned transactions must release their locks
// ---------------------------------------------------------------------

/// Dropping a session with an explicit transaction still open (a crashed
/// client, a dropped connection) rolls the transaction back and releases
/// every lock — the serving layer depends on this for its own teardown.
#[test]
fn dropped_session_with_open_txn_releases_locks() {
    let db = RecDb::new();
    db.execute("CREATE TABLE t (a INT)").expect("create");
    {
        let mut session = db.session();
        session.execute("BEGIN").expect("begin");
        session.execute("INSERT INTO t VALUES (1)").expect("insert");
        assert!(db.lock_table().held_count() > 0, "txn should hold locks");
        // Session dropped here with the transaction open.
    }
    assert_eq!(
        db.lock_table().held_count(),
        0,
        "Session::drop must abort the open transaction and release locks"
    );
    // The abandoned insert is gone and the table is immediately writable.
    assert_eq!(db.query("SELECT a FROM t").expect("scan").len(), 0);
    db.execute("INSERT INTO t VALUES (2)").expect("not locked");
}

/// The hard case: the abort path *itself* panics (armed `wal::append`
/// fault while writing the TxnAbort marker). The panic must be contained
/// inside `abort_txn` — locks still release, no panic escapes
/// `Session::drop`, and the engine keeps serving.
#[test]
fn abort_path_panic_still_releases_locks() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = std::env::temp_dir().join(format!(
        "recdb-robustness-abortpanic-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = RecDb::open_with_config(RecDbConfig {
            data_dir: Some(dir.clone()),
            ..RecDbConfig::default()
        })
        .expect("open durable");
        db.execute("CREATE TABLE t (a INT)").expect("create");
        let escaped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut session = db.session();
            session.execute("BEGIN").expect("begin");
            session.execute("INSERT INTO t VALUES (1)").expect("insert");
            // Arm AFTER the insert so the txn's own WAL writes go
            // through; the next `wal::append` is the abort marker.
            fault::arm_panic("wal::append", 1);
            // Session::drop -> abort_txn -> WAL abort marker -> panic,
            // which must be contained.
        }));
        let abort_fault_fired = fault::triggered("wal::append") > 0;
        fault::clear();
        assert!(escaped.is_ok(), "panic escaped Session::drop: {escaped:?}");
        assert!(
            abort_fault_fired,
            "the armed abort-path fault never fired; test is vacuous"
        );
        assert_eq!(
            db.lock_table().held_count(),
            0,
            "abort-path panic stranded locks"
        );
        assert!(
            db.render_metrics()
                .contains("recdb_txn_abort_panics_total 1"),
            "contained panic not counted"
        );
        // Engine still serves reads and writes.
        assert_eq!(db.query("SELECT a FROM t").expect("scan").len(), 0);
        db.execute("INSERT INTO t VALUES (3)")
            .expect("still writable");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
