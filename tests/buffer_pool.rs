//! Buffer-pool acceptance tests: an engine squeezed into a handful of
//! frames must produce byte-identical answers to an effectively-unbounded
//! one, evict under pressure, and leave zero pages pinned at rest.

use recdb::core::{RecDb, RecDbConfig};

/// Rows per multi-row INSERT statement (keeps SQL strings manageable).
const INSERT_CHUNK: usize = 500;

/// Build the shared workload's table + recommender on `db`, inserting
/// ratings for every `(user, item)` pair except the held-out unseen set.
fn load_world(db: &RecDb, users: i64, items: i64) {
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    let mut pending: Vec<String> = Vec::new();
    for u in 0..users {
        for i in 0..items {
            // Hold out ~1/4 of the pairs so every user has unseen items
            // for the recommender to rank.
            if (u + i) % 4 == 0 {
                continue;
            }
            let val = f64::from(((u * 7 + i * 3) % 9 + 1) as i32) / 2.0;
            pending.push(format!("({u}, {i}, {val})"));
            if pending.len() == INSERT_CHUNK {
                db.execute(&format!(
                    "INSERT INTO ratings VALUES {}",
                    pending.join(", ")
                ))
                .expect("insert chunk");
                pending.clear();
            }
        }
    }
    if !pending.is_empty() {
        db.execute(&format!(
            "INSERT INTO ratings VALUES {}",
            pending.join(", ")
        ))
        .expect("insert tail");
    }
    db.execute(
        "CREATE RECOMMENDER PoolRec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
    )
    .expect("create recommender");
    db.materialize("PoolRec").expect("materialize");
}

/// Render a result set as sorted `col|col|col` strings for comparison.
fn rows(db: &RecDb, sql: &str, cols: &[&str]) -> Vec<String> {
    let rs = db.query(sql).expect("query");
    let mut out: Vec<String> = (0..rs.len())
        .map(|i| {
            cols.iter()
                .map(|c| rs.value(i, c).expect("column").to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// The query battery both engines answer; every answer must match.
fn battery(db: &RecDb) -> Vec<Vec<String>> {
    let mut answers = Vec::new();
    answers.push(rows(
        db,
        "SELECT uid, iid, ratingval FROM ratings WHERE uid = 17",
        &["uid", "iid", "ratingval"],
    ));
    answers.push(rows(
        db,
        "SELECT uid, iid FROM ratings WHERE ratingval > 4.0 AND iid < 10",
        &["uid", "iid"],
    ));
    for uid in [0, 3, 41] {
        answers.push(rows(
            db,
            &format!(
                "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = {uid} ORDER BY R.ratingval DESC LIMIT 10"
            ),
            &["uid", "iid", "ratingval"],
        ));
    }
    answers
}

/// The ISSUE's acceptance scenario: a pool of 8 frames under a table
/// spanning 100+ pages (plus two B+-trees of index nodes) answers every
/// query identically to an unbounded engine, with real evictions and no
/// pinned pages left behind.
#[test]
fn eight_frame_pool_matches_unbounded_engine() {
    let bounded = RecDb::with_config(RecDbConfig {
        buffer_pool_pages: 8,
        ..RecDbConfig::default()
    });
    let unbounded = RecDb::with_config(RecDbConfig {
        buffer_pool_pages: usize::MAX,
        ..RecDbConfig::default()
    });
    // ~26k rows ≈ 100+ heap pages of (Int, Int, Float) tuples.
    let (users, items) = (250, 140);
    load_world(&bounded, users, items);
    load_world(&unbounded, users, items);

    let table_pages = unbounded
        .catalog()
        .table("ratings")
        .expect("table")
        .heap()
        .page_count();
    assert!(
        table_pages > 100,
        "workload must span 100+ pages, got {table_pages}"
    );
    assert!(
        bounded.buffer_pool().evictions() > 0,
        "an 8-frame pool under a {table_pages}-page table must evict"
    );

    assert_eq!(battery(&bounded), battery(&unbounded));

    // Mutate through the bounded pool and re-compare.
    for db in [&bounded, &unbounded] {
        db.execute("UPDATE ratings SET ratingval = 0.5 WHERE uid = 17 AND iid = 1")
            .expect("update");
        db.execute("DELETE FROM ratings WHERE uid = 3")
            .expect("delete");
    }
    assert_eq!(battery(&bounded), battery(&unbounded));

    // Pins are scan-scoped: at rest nothing may stay pinned.
    assert_eq!(bounded.buffer_pool().pinned_pages(), 0, "pin leak");
    assert_eq!(unbounded.buffer_pool().pinned_pages(), 0, "pin leak");

    // The pool metrics surface through the engine registry.
    let rendered = bounded.render_metrics();
    assert!(rendered.contains("recdb_buffer_pool_hits_total"));
    assert!(rendered.contains("recdb_buffer_pool_misses_total"));
    assert!(rendered.contains("recdb_pages_evicted_total"));
    assert!(rendered.contains("recdb_pages_pinned 0"));
}

/// The clock sweep must never evict the page a statement is working on:
/// a pool at the clamp floor (2 frames) still completes every operation.
#[test]
fn two_frame_pool_still_answers_correctly() {
    let tiny = RecDb::with_config(RecDbConfig {
        buffer_pool_pages: 0, // clamped up to the floor of 2
        ..RecDbConfig::default()
    });
    let reference = RecDb::new();
    for db in [&tiny, &reference] {
        load_world(db, 40, 30);
    }
    assert_eq!(battery(&tiny), battery(&reference));
    assert_eq!(tiny.buffer_pool().pinned_pages(), 0);
    assert!(tiny.buffer_pool().evictions() > 0);
}
