//! Wire-level acceptance + chaos tests for the serving layer: typed
//! results over TCP, transactions per connection, admission control,
//! timeouts, killed connections mid-transaction, the seeded fault sweep
//! over the `server::*` sites (verified against a shadow engine), and
//! crash-during-serve recovery.
//!
//! Every test that arms a fault site holds [`recdb::fault::exclusive`]
//! for its whole body — the registry is process-global and the harness
//! runs tests in parallel.

use recdb::core::RecDb;
use recdb::core::RecDbConfig;
use recdb::fault;
use recdb::server::{
    Client, ClientConfig, ClientError, ErrorCode, Server, ServerConfig, WireResult,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "recdb-server-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

fn sweep_seed() -> u64 {
    std::env::var("RECDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Start a server over a fresh in-memory engine with a markers table.
fn marker_server(cfg: ServerConfig) -> (Arc<RecDb>, Server) {
    let db = Arc::new(RecDb::new());
    db.execute("CREATE TABLE markers (writer INT, marker INT, part INT)")
        .expect("create markers");
    let server = Server::start(Arc::clone(&db), cfg).expect("bind server");
    (db, server)
}

/// Wait (bounded) for a condition the server reaches asynchronously —
/// e.g. noticing a dead peer at its next read slice.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

// ---------------------------------------------------------------------
// Round trips: typed results, errors, metrics, ping
// ---------------------------------------------------------------------

#[test]
fn typed_results_round_trip_over_the_wire() {
    let db = Arc::new(RecDb::new());
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    client.ping().expect("ping");
    assert!(matches!(
        client
            .execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
            .expect("create"),
        WireResult::TableCreated(name) if name == "ratings"
    ));
    assert!(matches!(
        client
            .execute("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0)")
            .expect("insert"),
        WireResult::Inserted(3)
    ));
    let rows = client
        .query("SELECT uid, iid, ratingval FROM ratings WHERE uid = 1")
        .expect("select");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.schema().columns().len(), 3);

    // An engine error travels as a classified, fatal error frame and the
    // connection stays healthy for the next statement.
    let err = client.execute("THIS IS NOT SQL").expect_err("parse error");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Parse);
            assert!(!e.retryable);
        }
        other => panic!("expected server error, got {other}"),
    }
    client.ping().expect("connection still healthy");

    // The METRICS verb serves the whole registry, server metrics included.
    let text = client.metrics_text().expect("metrics");
    assert!(text.contains("recdb_connections_active"), "{text}");
    assert!(
        text.contains("recdb_requests_total{outcome=\"ok\"}"),
        "{text}"
    );
    assert!(text.contains("recdb_request_micros"), "{text}");

    let report = server.shutdown();
    assert!(report.drained_within_deadline, "{report:?}");
    assert_eq!(db.lock_table().held_count(), 0);
}

#[test]
fn transactions_are_per_connection_over_the_wire() {
    let (db, server) = marker_server(ServerConfig::default());
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");

    assert!(matches!(
        a.execute("BEGIN").expect("begin"),
        WireResult::TransactionStarted
    ));
    assert!(a.in_transaction());
    a.execute("INSERT INTO markers VALUES (1, 1, 0)")
        .expect("insert");

    // B's session is independent: it has no transaction open.
    let err = b.execute("COMMIT").expect_err("no txn on b");
    assert!(matches!(&err, ClientError::Server(e) if e.code == ErrorCode::TransactionState));

    assert!(matches!(
        a.execute("COMMIT").expect("commit"),
        WireResult::TransactionCommitted
    ));
    assert!(!a.in_transaction());
    assert_eq!(
        b.query("SELECT marker FROM markers").expect("read").len(),
        1
    );

    // ROLLBACK over the wire undoes.
    a.execute("BEGIN").expect("begin 2");
    a.execute("INSERT INTO markers VALUES (1, 2, 0)")
        .expect("insert 2");
    a.execute("ROLLBACK").expect("rollback");
    assert_eq!(
        b.query("SELECT marker FROM markers").expect("read 2").len(),
        1
    );

    drop((a, b));
    server.shutdown();
    assert_eq!(db.lock_table().held_count(), 0);
}

// ---------------------------------------------------------------------
// Killed connections and abandoned transactions
// ---------------------------------------------------------------------

#[test]
fn killed_connection_mid_transaction_releases_locks() {
    let (db, server) = marker_server(ServerConfig::default());
    let mut victim = Client::connect(server.addr()).expect("connect");
    victim.execute("BEGIN").expect("begin");
    victim
        .execute("INSERT INTO markers VALUES (7, 7, 0)")
        .expect("insert");
    assert!(db.lock_table().held_count() > 0, "txn should hold locks");

    // Kill the socket with the transaction open. The server must notice
    // the dead peer, drop the session, abort the transaction, and
    // release every lock.
    victim.drop_connection();
    eventually("server aborts the orphaned transaction", || {
        db.lock_table().held_count() == 0
    });

    // The rolled-back insert is gone and the table is writable at once.
    let mut other = Client::connect(server.addr()).expect("connect other");
    assert_eq!(
        other
            .query("SELECT marker FROM markers")
            .expect("read")
            .len(),
        0
    );
    other
        .execute("INSERT INTO markers VALUES (8, 8, 0)")
        .expect("table not locked");

    drop(other);
    server.shutdown();
    assert_eq!(db.lock_table().held_count(), 0);
}

// ---------------------------------------------------------------------
// Admission control and timeouts
// ---------------------------------------------------------------------

#[test]
fn admission_control_rejects_then_recovers() {
    let (db, server) = marker_server(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let no_retry = ClientConfig {
        max_retries: 0,
        ..ClientConfig::default()
    };
    let c1 = Client::connect_with(server.addr(), no_retry.clone()).expect("c1");
    let _c2 = Client::connect_with(server.addr(), no_retry.clone()).expect("c2");

    // Third connection: immediate retryable rejection, not a hang.
    let err = Client::connect_with(server.addr(), no_retry.clone()).expect_err("over cap");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert!(e.retryable, "overload must be retryable");
        }
        other => panic!("expected overloaded, got {other}"),
    }
    assert!(db
        .render_metrics()
        .contains("recdb_server_overload_rejections_total 1"));

    // Capacity freed -> admitted again (the reconnecting client's
    // backoff would ride this out on its own with retries enabled).
    drop(c1);
    eventually("server reaps the closed connection", || {
        server.active_connections() < 2
    });
    let mut c3 = Client::connect_with(server.addr(), no_retry).expect("admitted after close");
    c3.ping().expect("healthy");

    drop((_c2, c3));
    server.shutdown();
}

#[test]
fn idle_timeout_closes_and_client_reconnects() {
    let (_db, server) = marker_server(ServerConfig {
        idle_timeout: Duration::from_millis(120),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("first ping");
    let reconnects_before = client.reconnects();

    std::thread::sleep(Duration::from_millis(400));
    // The server closed the idle connection; the client transparently
    // reconnects and the call still succeeds.
    client.ping().expect("ping after idle close");
    assert!(
        client.reconnects() > reconnects_before,
        "client should have dialed again after the idle close"
    );
    server.shutdown();
}

#[test]
fn per_request_deadline_is_cancelled_and_retryable() {
    let db = Arc::new(RecDb::new());
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create");
    let mut batch = Vec::new();
    for uid in 0..40i64 {
        for iid in 0..40i64 {
            batch.push(format!(
                "({uid}, {iid}, {})",
                1.0 + ((uid + iid) % 8) as f64 * 0.5
            ));
        }
    }
    db.execute(&format!("INSERT INTO ratings VALUES {}", batch.join(", ")))
        .expect("seed");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).expect("bind");
    let mut client = Client::connect_with(
        server.addr(),
        ClientConfig {
            max_retries: 0,
            ..ClientConfig::default()
        },
    )
    .expect("connect");

    // A deadline of ~zero cancels even a cheap scan; the wire error is
    // the engine's Cancelled, marked retryable.
    let err = client
        .execute_with_deadline(
            "SELECT uid, iid, ratingval FROM ratings ORDER BY ratingval",
            Some(Duration::from_micros(1)),
        )
        .expect_err("deadline must trip");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Cancelled);
            assert!(e.retryable);
        }
        other => panic!("expected cancelled, got {other}"),
    }
    // Without the deadline the same statement succeeds on the same
    // connection.
    client
        .execute("SELECT uid, iid, ratingval FROM ratings ORDER BY ratingval")
        .expect("no deadline");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Frame hardening at the socket level
// ---------------------------------------------------------------------

/// Read one length-prefixed frame directly off a raw socket.
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn oversized_frame_is_rejected_without_allocation_or_panic() {
    let (_db, server) = marker_server(ServerConfig {
        max_frame_bytes: 64 * 1024,
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
    let _hello = read_raw_frame(&mut raw).expect("hello frame");

    // Announce a ~4 GiB frame. The server must answer with a clean
    // frame_too_large error and close — never allocate or panic.
    raw.write_all(&0xFFFF_FFFFu32.to_be_bytes())
        .expect("header");
    let reply = read_raw_frame(&mut raw).expect("error frame");
    let text = String::from_utf8_lossy(&reply).into_owned();
    assert!(text.contains("frame_too_large"), "{text}");
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest); // server closes after the error
    assert!(rest.is_empty());

    // The server itself keeps serving.
    let mut client = Client::connect(server.addr()).expect("still serving");
    client.ping().expect("healthy");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Seeded fault sweep over the server sites, vs a shadow engine
// ---------------------------------------------------------------------

const SERVER_SITES: [&str; 3] = [
    "server::accept",
    "server::frame_read",
    "server::frame_write",
];

/// For every server fail point and every scheduled hit position, run a
/// transactional wire workload with the site armed, then prove: no lock
/// leaks, and the surviving data equals a shadow engine replaying
/// exactly the acknowledged commits (modulo ambiguous commits, which
/// must still be atomic).
#[test]
fn seeded_server_fault_sweep_matches_shadow_replay() {
    let _gate = fault::exclusive();
    let seed = sweep_seed();
    for site in SERVER_SITES {
        for round in 0..4u64 {
            fault::clear();
            let (db, server) = marker_server(ServerConfig {
                idle_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            });
            let addr = server.addr();
            let nth = fault::schedule_nth(seed.wrapping_add(round), site, 4);
            fault::arm_error(site, nth);

            let mut acked: Vec<i64> = Vec::new();
            let mut client = Client::connect_with(
                addr,
                ClientConfig {
                    max_retries: 6,
                    backoff_base: Duration::from_millis(1),
                    ..ClientConfig::default()
                },
            )
            .expect("sweep connect");
            for marker in 0..6i64 {
                // Whole-transaction retry, the only sound unit.
                for _attempt in 0..3 {
                    let ok = client.execute("BEGIN").is_ok()
                        && client
                            .execute(&format!("INSERT INTO markers VALUES (0, {marker}, 0)"))
                            .is_ok()
                        && client
                            .execute(&format!("INSERT INTO markers VALUES (0, {marker}, 1)"))
                            .is_ok();
                    if !ok {
                        if client.in_transaction() {
                            let _ = client.execute("ROLLBACK");
                        }
                        continue;
                    }
                    match client.execute("COMMIT") {
                        Ok(WireResult::TransactionCommitted) => {
                            acked.push(marker);
                            break;
                        }
                        Ok(_) => {}
                        Err(ClientError::ConnectionLost { sent: true, .. }) => break, // ambiguous
                        Err(_) => {}
                    }
                }
            }
            drop(client);
            fault::clear();
            let report = server.shutdown();
            assert_eq!(
                report.leaked_connections, 0,
                "seed {seed} site {site} round {round}: leaked connections"
            );
            assert_eq!(
                db.lock_table().held_count(),
                0,
                "seed {seed} site {site} round {round}: leaked locks"
            );

            // Shadow replay: a fresh engine executing exactly the acked
            // commits serially.
            let shadow = RecDb::new();
            shadow
                .execute("CREATE TABLE markers (writer INT, marker INT, part INT)")
                .expect("shadow create");
            for m in &acked {
                shadow
                    .execute(&format!(
                        "INSERT INTO markers VALUES (0, {m}, 0), (0, {m}, 1)"
                    ))
                    .expect("shadow insert");
            }
            let count_rows = |db: &RecDb, marker: i64| {
                db.query(&format!("SELECT part FROM markers WHERE marker = {marker}"))
                    .expect("count query")
                    .len()
            };
            for m in &acked {
                assert_eq!(
                    count_rows(&db, *m),
                    count_rows(&shadow, *m),
                    "seed {seed} site {site} round {round}: acked marker {m} diverges from shadow"
                );
            }
            // Non-acked markers may exist (ambiguous commits) but must
            // be atomic: exactly 0 or 2 rows, never torn.
            for m in 0..6i64 {
                let n = count_rows(&db, m);
                assert!(
                    n == 0 || n == 2,
                    "seed {seed} site {site} round {round}: marker {m} torn ({n} rows)"
                );
            }
        }
    }
    fault::clear();
}

// ---------------------------------------------------------------------
// Crash-during-serve recovery
// ---------------------------------------------------------------------

/// Commits acknowledged over the wire must survive a crash: force-stop
/// the server with connections open mid-transaction, reopen the data
/// directory, and check exactly the acked markers (plus nothing torn).
#[test]
fn crash_during_serve_preserves_exactly_acked_commits() {
    let dir = temp_dir("crash");
    let acked: Vec<i64> = {
        let db = Arc::new(
            RecDb::open_with_config(RecDbConfig {
                data_dir: Some(dir.clone()),
                ..RecDbConfig::default()
            })
            .expect("open durable"),
        );
        db.execute("CREATE TABLE markers (writer INT, marker INT, part INT)")
            .expect("create");
        db.checkpoint().expect("baseline checkpoint");
        let server = Server::start(
            Arc::clone(&db),
            ServerConfig {
                // Tiny drain budget: shutdown behaves like a hard stop
                // for anything in flight.
                drain_timeout: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.addr();

        let mut acked = Vec::new();
        let mut client = Client::connect(addr).expect("connect");
        for marker in 0..5i64 {
            client.execute("BEGIN").expect("begin");
            client
                .execute(&format!("INSERT INTO markers VALUES (0, {marker}, 0)"))
                .expect("insert 0");
            client
                .execute(&format!("INSERT INTO markers VALUES (0, {marker}, 1)"))
                .expect("insert 1");
            if let Ok(WireResult::TransactionCommitted) = client.execute("COMMIT") {
                acked.push(marker);
            }
        }
        // Leave a transaction OPEN mid-flight when the server dies: its
        // effects must not survive.
        client.execute("BEGIN").expect("begin open");
        client
            .execute("INSERT INTO markers VALUES (0, 999, 0)")
            .expect("uncommitted insert");
        server.shutdown();
        acked
        // engine dropped here; the open transaction was aborted by the
        // server's teardown, the acked commits were WAL-fsynced at their
        // COMMIT.
    };

    let db = RecDb::open_with_config(RecDbConfig {
        data_dir: Some(dir.clone()),
        ..RecDbConfig::default()
    })
    .expect("reopen");
    let rows = db
        .query("SELECT marker, part FROM markers")
        .expect("read back");
    let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    for row in rows.rows() {
        if let recdb::storage::Value::Int(m) = row.values()[0] {
            *counts.entry(m).or_insert(0) += 1;
        }
    }
    assert_eq!(counts.get(&999), None, "uncommitted txn leaked to disk");
    for m in &acked {
        assert_eq!(
            counts.get(m),
            Some(&2),
            "acked marker {m} lost or torn after recovery"
        );
    }
    for (m, n) in &counts {
        assert!(
            acked.contains(m) && *n == 2,
            "marker {m} on disk was never acknowledged (or torn: {n} rows)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Graceful shutdown semantics
// ---------------------------------------------------------------------

#[test]
fn graceful_shutdown_drains_in_flight_statements() {
    let (db, server) = marker_server(ServerConfig::default());
    let addr = server.addr();

    // A client mid-burst: statements must keep succeeding until the
    // drain, and the one in flight at shutdown must complete.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let mut completed = 0u64;
        loop {
            match client.execute(&format!("INSERT INTO markers VALUES (1, {completed}, 0)")) {
                Ok(_) => completed += 1,
                Err(_) => return completed,
            }
        }
    });
    std::thread::sleep(Duration::from_millis(100));

    let report = server.shutdown();
    let completed = worker.join().expect("worker");
    assert!(
        report.drained_within_deadline,
        "in-flight statements should drain inside the deadline: {report:?}"
    );
    assert_eq!(report.leaked_connections, 0);
    assert_eq!(
        db.lock_table().held_count(),
        0,
        "locks leaked past shutdown"
    );
    // Every acknowledged insert is visible; the drain lost nothing.
    assert_eq!(
        db.query("SELECT marker FROM markers").expect("read").len() as u64,
        completed
    );

    // New connections are refused after shutdown.
    assert!(Client::connect_with(
        addr,
        ClientConfig {
            max_retries: 0,
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        }
    )
    .is_err());
}
