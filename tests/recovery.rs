//! Crash-recovery acceptance tests: WAL replay, checkpointing, torn-tail
//! truncation, checksum verification, and the fault-injected crash matrix.
//!
//! Every test holds [`recdb::fault::exclusive`] for its whole body: durable
//! statements pass through the `wal::*` / `storage::*` fail points, and the
//! fault registry is process-global while the harness runs tests in
//! parallel.
//!
//! Crash model: dropping a [`RecDb`] *is* the crash — there is no `Drop`
//! flush. A statement counts as committed only when `execute` returned
//! `Ok`; after reopen the committed prefix must be intact, with nothing
//! lost and nothing phantom. The "expected" side is an in-memory shadow
//! engine that applies exactly the statements the durable engine
//! acknowledged.

use recdb::core::{EngineError, RecDb, RecDbConfig};
use recdb::fault;
use recdb::storage::RecoveryMode;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh directory per test run; removed on success, left behind on
/// failure for post-mortem.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "recdb-recovery-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// One step of the crash-matrix workload.
#[derive(Clone, Copy)]
enum Op {
    Sql(&'static str),
    Checkpoint,
}

/// A mixed DML/DDL workload: multi-row inserts, an index build, an
/// update, a delete, and a mid-stream checkpoint so the
/// `storage::page_flush` / `storage::checkpoint` sites are exercised too.
const WORKLOAD: &[Op] = &[
    Op::Sql("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)"),
    Op::Sql("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0)"),
    Op::Sql("INSERT INTO ratings VALUES (2, 1, 4.0), (2, 3, 5.0)"),
    Op::Sql("CREATE INDEX ratings_uid ON ratings (uid)"),
    Op::Checkpoint,
    Op::Sql("INSERT INTO ratings VALUES (3, 2, 2.5)"),
    Op::Sql("UPDATE ratings SET ratingval = 4.5 WHERE uid = 1 AND iid = 2"),
    Op::Sql("DELETE FROM ratings WHERE uid = 2 AND iid = 1"),
    Op::Checkpoint,
    Op::Sql("INSERT INTO ratings VALUES (4, 1, 3.5)"),
];

/// The ratings table as a sorted row list, or `None` if it doesn't exist
/// (e.g. the crash predated CREATE TABLE).
fn ratings_rows(db: &mut RecDb) -> Option<Vec<String>> {
    match db.query("SELECT uid, iid, ratingval FROM ratings") {
        Ok(rs) => {
            let mut rows: Vec<String> = (0..rs.len())
                .map(|i| {
                    format!(
                        "{}|{}|{}",
                        rs.value(i, "uid").unwrap(),
                        rs.value(i, "iid").unwrap(),
                        rs.value(i, "ratingval").unwrap()
                    )
                })
                .collect();
            rows.sort();
            Some(rows)
        }
        Err(_) => None,
    }
}

fn has_uid_index(db: &RecDb) -> bool {
    db.catalog()
        .table("ratings")
        .map(|t| t.index("ratings_uid").is_ok())
        .unwrap_or(false)
}

/// Run the workload against a durable engine with `site` armed to fail at
/// its `nth` hit, crash at the first error (or at the end), reopen, and
/// assert the recovered state equals the shadow of acknowledged
/// statements.
fn crash_once(site: &'static str, nth: u64, tag: &str) {
    fault::clear();
    let dir = temp_dir(tag);
    let mut shadow = RecDb::new();
    let db = RecDb::open(&dir).expect("open fresh durable engine");
    assert!(db.is_durable());

    fault::arm_error(site, nth);
    for op in WORKLOAD {
        let survived = match *op {
            Op::Sql(sql) => match db.execute(sql) {
                Ok(_) => {
                    shadow
                        .execute(sql)
                        .unwrap_or_else(|e| panic!("shadow rejected `{sql}`: {e}"));
                    true
                }
                Err(_) => false,
            },
            Op::Checkpoint => db.checkpoint().is_ok(),
        };
        if !survived {
            break; // first failure = the crash point
        }
    }
    fault::clear();
    drop(db); // crash: nothing is flushed on drop

    let mut recovered =
        RecDb::open(&dir).unwrap_or_else(|e| panic!("site {site} nth {nth}: reopen failed: {e}"));
    assert_eq!(
        ratings_rows(&mut recovered),
        ratings_rows(&mut shadow),
        "site {site} nth {nth}: recovered rows diverge from committed prefix"
    );
    assert_eq!(
        has_uid_index(&recovered),
        has_uid_index(&shadow),
        "site {site} nth {nth}: index presence diverges"
    );
    cleanup(&dir);
}

/// Sweep one fail site across every hit position the workload can reach.
fn crash_matrix(site: &'static str, max_nth: u64, tag: &str) {
    let _gate = fault::exclusive();
    for nth in 1..=max_nth {
        crash_once(site, nth, tag);
    }
}

// ---------------------------------------------------------------------
// Clean-path durability
// ---------------------------------------------------------------------

#[test]
fn durable_engine_survives_clean_reopen_with_checkpoint() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = temp_dir("clean");
    let mut shadow = RecDb::new();
    {
        let db = RecDb::open(&dir).expect("open");
        assert_eq!(db.data_dir(), Some(dir.as_path()));
        for op in WORKLOAD {
            match *op {
                Op::Sql(sql) => {
                    db.execute(sql).expect("workload");
                    shadow.execute(sql).expect("shadow");
                }
                Op::Checkpoint => db.checkpoint().expect("checkpoint"),
            }
        }
        db.checkpoint().expect("final checkpoint");
    }
    let mut db = RecDb::open(&dir).expect("reopen");
    assert_eq!(ratings_rows(&mut db), ratings_rows(&mut shadow));
    assert!(has_uid_index(&db));
    // The final checkpoint covered every record, so the log is only a
    // 16-byte header again.
    let wal_len = std::fs::metadata(dir.join("wal.log")).expect("wal").len();
    assert_eq!(wal_len, 16, "checkpoint should prune the log");
    cleanup(&dir);
}

#[test]
fn uncheckpointed_commits_replay_from_the_log() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = temp_dir("replay");
    let mut shadow = RecDb::new();
    {
        let db = RecDb::open(&dir).expect("open");
        for op in WORKLOAD {
            if let Op::Sql(sql) = *op {
                db.execute(sql).expect("workload");
                shadow.execute(sql).expect("shadow");
            }
            // Checkpoints skipped on purpose: everything must come back
            // from WAL replay alone.
        }
    }
    let mut db = RecDb::open(&dir).expect("reopen");
    assert_eq!(ratings_rows(&mut db), ratings_rows(&mut shadow));
    assert!(has_uid_index(&db));
    cleanup(&dir);
}

#[test]
fn torn_wal_tail_loses_only_the_torn_suffix() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = temp_dir("torn");
    let mut shadow = RecDb::new();
    {
        let db = RecDb::open(&dir).expect("open");
        for sql in [
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)",
            "INSERT INTO ratings VALUES (1, 1, 5.0), (2, 1, 4.0)",
        ] {
            db.execute(sql).expect("workload");
            shadow.execute(sql).expect("shadow");
        }
    }
    // Simulate a crash mid-append: garbage after the last good frame.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal.log"))
        .expect("open wal");
    f.write_all(&[0xAB; 37]).expect("tear the tail");
    drop(f);

    let mut db = RecDb::open(&dir).expect("reopen truncates the torn tail");
    assert_eq!(ratings_rows(&mut db), ratings_rows(&mut shadow));
    // The healed log keeps accepting commits.
    db.execute("INSERT INTO ratings VALUES (3, 1, 2.0)")
        .expect("insert after heal");
    drop(db);
    let mut db = RecDb::open(&dir).expect("reopen again");
    assert_eq!(ratings_rows(&mut db).expect("rows").len(), 3);
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// Crash matrix: every fail point, every hit position
// ---------------------------------------------------------------------

#[test]
fn crash_matrix_wal_append() {
    // One hit per durable statement: sweep past the workload length.
    crash_matrix("wal::append", 9, "append");
}

#[test]
fn crash_matrix_wal_fsync() {
    crash_matrix("wal::fsync", 9, "fsync");
}

#[test]
fn crash_matrix_page_flush() {
    // Fires once per dirty page written by a checkpoint.
    crash_matrix("storage::page_flush", 4, "flush");
}

#[test]
fn crash_matrix_checkpoint() {
    // Fires once per checkpoint, just before the manifest rename.
    crash_matrix("storage::checkpoint", 2, "ckpt");
}

/// CI matrix entry point: drives the crash schedule from
/// `RECDB_FAULT_SEED` (seeds 1, 7, 42 in the workflow).
#[test]
fn seeded_crash_sweep_recovers_committed_prefix() {
    let seed: u64 = std::env::var("RECDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let _gate = fault::exclusive();
    for site in [
        "wal::append",
        "wal::fsync",
        "storage::page_flush",
        "storage::checkpoint",
    ] {
        let nth = fault::schedule_nth(seed, site, 9);
        crash_once(site, nth, "seeded");
    }
}

// ---------------------------------------------------------------------
// Crash matrix under buffer-pool pressure: storage::pool_evict and
// storage::btree_split
// ---------------------------------------------------------------------

/// One step of the small-pool workload. Auto-maintenance is disabled in
/// this matrix: it runs *after* a statement's commit fsync, so an
/// injected pool fault there would crash a statement that is already
/// durable — outside the acknowledged-prefix crash model. Index builds
/// are driven by the explicit `Materialize` op instead.
enum PoolOp {
    Sql(String),
    Checkpoint,
    /// Materialize the recommender's RecScoreIndex (B+-tree inserts,
    /// node splits, and heavy pool traffic). Runs only on the durable
    /// engine: the index is derived state and never compared.
    Materialize,
}

/// A workload sized against a 4-frame pool: a multi-page ratings table,
/// a recommender whose materialized index spans dozens of node pages,
/// checkpoints (which stream every heap page through the pool), and a
/// full-table UPDATE scan.
fn pool_ops() -> Vec<PoolOp> {
    let mut ops = vec![PoolOp::Sql(
        "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)".into(),
    )];
    let mut chunk: Vec<String> = Vec::new();
    for u in 0..12i64 {
        for i in 0..110i64 {
            if (u * 5 + i) % 4 == 0 {
                continue; // held out: every user keeps unseen items
            }
            let val = f64::from(((u + i * 3) % 9 + 1) as i32) / 2.0;
            chunk.push(format!("({u}, {i}, {val})"));
            if chunk.len() == 90 {
                ops.push(PoolOp::Sql(format!(
                    "INSERT INTO ratings VALUES {}",
                    chunk.join(", ")
                )));
                chunk.clear();
            }
        }
    }
    if !chunk.is_empty() {
        ops.push(PoolOp::Sql(format!(
            "INSERT INTO ratings VALUES {}",
            chunk.join(", ")
        )));
    }
    ops.push(PoolOp::Sql(
        "CREATE RECOMMENDER PoolRec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF"
            .into(),
    ));
    ops.push(PoolOp::Materialize);
    ops.push(PoolOp::Checkpoint);
    ops.push(PoolOp::Sql(
        "UPDATE ratings SET ratingval = 1.5 WHERE uid = 7".into(),
    ));
    ops.push(PoolOp::Sql("DELETE FROM ratings WHERE iid = 42".into()));
    ops.push(PoolOp::Checkpoint);
    ops
}

/// As [`crash_once`], but against a 4-frame engine, and with *panics*
/// counted as crashes too: pool faults on scan paths surface as panics
/// by design (scans have no error channel), and a mid-statement panic is
/// exactly a crash in this model — the WAL never saw a commit marker for
/// the statement, so recovery must exclude it.
fn pool_crash_once(site: &'static str, nth: u64, mode: RecoveryMode, tag: &str) {
    fault::clear();
    let dir = temp_dir(tag);
    let small_pool = |recovery| RecDbConfig {
        data_dir: Some(dir.clone()),
        recovery,
        buffer_pool_pages: 4,
        auto_maintenance: false,
        ..RecDbConfig::default()
    };
    let mut shadow = RecDb::with_config(RecDbConfig {
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    let db =
        RecDb::open_with_config(small_pool(RecoveryMode::Strict)).expect("open small-pool engine");

    fault::arm_error(site, nth);
    // Injected pool faults legitimately panic (see above); keep the
    // expected unwinds out of the test output.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for op in pool_ops() {
        let survived = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &op {
            PoolOp::Sql(sql) => db.execute(sql).is_ok(),
            PoolOp::Checkpoint => db.checkpoint().is_ok(),
            PoolOp::Materialize => db.materialize("PoolRec").is_ok(),
        }))
        .unwrap_or(false);
        if survived {
            if let PoolOp::Sql(sql) = &op {
                shadow
                    .execute(sql)
                    .unwrap_or_else(|e| panic!("shadow rejected `{sql}`: {e}"));
            }
        } else {
            break; // first failure (or panic) = the crash point
        }
    }
    std::panic::set_hook(quiet);
    fault::clear();
    drop(db); // crash: nothing is flushed on drop

    let mut recovered = RecDb::open_with_config(small_pool(mode))
        .unwrap_or_else(|e| panic!("site {site} nth {nth} ({tag}): reopen failed: {e}"));
    assert_eq!(
        ratings_rows(&mut recovered),
        ratings_rows(&mut shadow),
        "site {site} nth {nth} ({tag}): recovered rows diverge from committed prefix"
    );
    assert_eq!(
        recovered.recommender_names(),
        shadow.recommender_names(),
        "site {site} nth {nth} ({tag}): recommender presence diverges"
    );
    assert_eq!(
        recovered.buffer_pool().pinned_pages(),
        0,
        "site {site} nth {nth} ({tag}): pages left pinned after recovery"
    );
    cleanup(&dir);
}

#[test]
fn crash_matrix_pool_evict() {
    let _gate = fault::exclusive();
    // Evictions number in the hundreds under a 4-frame pool; probe the
    // early hits densely and the tail geometrically.
    for nth in [1, 2, 3, 5, 9, 27, 81, 243] {
        pool_crash_once("storage::pool_evict", nth, RecoveryMode::Strict, "evict");
    }
}

#[test]
fn crash_matrix_btree_split() {
    let _gate = fault::exclusive();
    // Splits happen only while materializing the score index.
    for nth in 1..=4 {
        pool_crash_once("storage::btree_split", nth, RecoveryMode::Strict, "split");
    }
}

/// The seeded sweep over the pool-pressure sites, in both recovery
/// modes (CI drives `RECDB_FAULT_SEED` as for the main matrix).
#[test]
fn seeded_pool_crash_sweep_recovers_in_both_modes() {
    let seed: u64 = std::env::var("RECDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let _gate = fault::exclusive();
    for site in ["storage::pool_evict", "storage::btree_split"] {
        let nth = fault::schedule_nth(seed, site, 64);
        pool_crash_once(site, nth, RecoveryMode::Strict, "seeded-strict");
        pool_crash_once(site, nth, RecoveryMode::SalvageToLastGood, "seeded-salvage");
    }
}

// ---------------------------------------------------------------------
// Checksums: corruption detection and salvage
// ---------------------------------------------------------------------

/// Build a two-table checkpoint and then flip one byte inside a `ratings`
/// page, returning the data directory.
fn corrupted_checkpoint(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    {
        let db = RecDb::open(&dir).expect("open");
        db.execute_script(
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             CREATE TABLE items (iid INT, name TEXT);
             INSERT INTO ratings VALUES (1, 1, 5.0), (2, 1, 4.0), (3, 2, 3.0);
             INSERT INTO items VALUES (1, 'Spartacus'), (2, 'Inception');",
        )
        .expect("seed");
        db.checkpoint().expect("checkpoint");
    }
    let page_file = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("ratings.") && name.ends_with(".tbl")
        })
        .expect("ratings page file exists");
    let mut bytes = std::fs::read(&page_file).expect("read page file");
    bytes[100] ^= 0xFF; // flip one byte inside page 0's payload
    std::fs::write(&page_file, bytes).expect("write corrupted file");
    dir
}

#[test]
fn corrupted_page_in_strict_mode_names_table_file_and_page() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = corrupted_checkpoint("strict");
    match RecDb::open(&dir) {
        Err(EngineError::Corruption { table, source }) => {
            assert_eq!(table, "ratings");
            let msg = source.to_string();
            assert!(msg.contains("ratings."), "file not named: {msg}");
            assert!(msg.contains("page 0"), "page not named: {msg}");
        }
        other => panic!("expected Corruption, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn corrupted_page_in_salvage_mode_keeps_the_healthy_tables() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = corrupted_checkpoint("salvage");
    let db = RecDb::open_with_config(RecDbConfig {
        data_dir: Some(dir.clone()),
        recovery: RecoveryMode::SalvageToLastGood,
        ..RecDbConfig::default()
    })
    .expect("salvage open succeeds");
    // The bad page is blanked, the rest of the database serves.
    let items = db
        .query("SELECT iid, name FROM items")
        .expect("items intact");
    assert_eq!(items.len(), 2);
    assert_eq!(
        db.query("SELECT uid FROM ratings")
            .expect("table usable")
            .len(),
        0,
        "the corrupt page's rows are gone, not resurrected"
    );
    // And the salvaged engine accepts new writes.
    db.execute("INSERT INTO ratings VALUES (9, 9, 1.0)")
        .expect("insert after salvage");
    assert_eq!(db.query("SELECT uid FROM ratings").expect("rows").len(), 1);
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// Recommenders: definitions persist, models rebuild
// ---------------------------------------------------------------------

#[test]
fn recommender_answers_survive_crash_and_reopen() {
    let _gate = fault::exclusive();
    fault::clear();
    let dir = temp_dir("rec");
    const RECOMMEND: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
         WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";
    let answers_before;
    {
        let db = RecDb::open(&dir).expect("open");
        db.execute_script(
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                        (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);
             CREATE RECOMMENDER GeneralRec ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;",
        )
        .expect("seed + recommender");
        let rows = db.query(RECOMMEND).expect("recommend before crash");
        answers_before = (0..rows.len())
            .map(|i| {
                format!(
                    "{}|{}",
                    rows.value(i, "iid").unwrap(),
                    rows.value(i, "ratingval").unwrap()
                )
            })
            .collect::<Vec<_>>();
        assert!(!answers_before.is_empty());
        // No checkpoint: definition and ratings come back via the WAL,
        // and the model is rebuilt from the recovered rows.
    }
    let db = RecDb::open(&dir).expect("reopen");
    assert_eq!(db.recommender_names(), vec!["generalrec"]);
    let rows = db.query(RECOMMEND).expect("recommend after recovery");
    let answers_after = (0..rows.len())
        .map(|i| {
            format!(
                "{}|{}",
                rows.value(i, "iid").unwrap(),
                rows.value(i, "ratingval").unwrap()
            )
        })
        .collect::<Vec<_>>();
    assert_eq!(answers_after, answers_before, "same model, same answers");

    // A checkpoint persists the definition in the manifest too: prune the
    // log, reopen, and the recommender is still there.
    db.checkpoint().expect("checkpoint");
    drop(db);
    let db = RecDb::open(&dir).expect("reopen from checkpoint");
    assert_eq!(db.recommender_names(), vec!["generalrec"]);
    assert!(!db.query(RECOMMEND).expect("recommend").is_empty());

    // DROP RECOMMENDER is durable as well.
    db.execute("DROP RECOMMENDER GeneralRec").expect("drop");
    drop(db);
    let db = RecDb::open(&dir).expect("reopen after drop");
    assert!(db.recommender_names().is_empty());
    cleanup(&dir);
}
