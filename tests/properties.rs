//! Property-based tests over the full stack.
//!
//! The central property is **optimizer soundness**: for arbitrary ratings
//! data and arbitrary pushable predicates, the naive plan (full Recommend,
//! Filter on top — the paper's Figure 3(a)) and the optimized plan
//! (FilterRecommend / JoinRecommend) must return exactly the same rows.

use proptest::prelude::*;
use recdb::core::RecDb;
use recdb::exec::{build_logical, execute_plan, optimize, ExecContext, ResultSet};
use recdb::sql::{parse, Statement};
use recdb::storage::Value;

/// Arbitrary small ratings universe: distinct (user, item) pairs with
/// half-star ratings.
fn ratings_strategy() -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    proptest::collection::btree_set((1i64..12, 1i64..12), 5..60).prop_flat_map(|pairs| {
        let pairs: Vec<(i64, i64)> = pairs.into_iter().collect();
        let n = pairs.len();
        proptest::collection::vec(2u8..=10, n).prop_map(move |halves| {
            pairs
                .iter()
                .zip(&halves)
                .map(|(&(u, i), &h)| (u, i, h as f64 / 2.0))
                .collect()
        })
    })
}

fn db_with(ratings: &[(i64, i64, f64)], algorithm: &str) -> RecDb {
    let db = RecDb::new();
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .unwrap();
    let values: Vec<String> = ratings
        .iter()
        .map(|(u, i, r)| format!("({u}, {i}, {r})"))
        .collect();
    db.execute(&format!("INSERT INTO ratings VALUES {}", values.join(", ")))
        .unwrap();
    db.execute(&format!(
        "CREATE RECOMMENDER prop ON ratings USERS FROM uid ITEMS FROM iid \
         RATINGS FROM ratingval USING {algorithm}"
    ))
    .unwrap();
    db
}

fn run_naive_and_optimized(db: &RecDb, sql: &str) -> (ResultSet, ResultSet) {
    let Statement::Select(select) = parse(sql).unwrap() else {
        panic!("not a select")
    };
    let catalog = db.catalog();
    let ctx = ExecContext::new(&catalog, db, recdb::guard::QueryGuard::unlimited());
    let naive = build_logical(&select, &catalog).unwrap();
    let optimized = optimize(build_logical(&select, &catalog).unwrap());
    (
        execute_plan(&naive, &ctx).unwrap(),
        execute_plan(&optimized, &ctx).unwrap(),
    )
}

fn canonical(r: &ResultSet) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = r
        .rows()
        .iter()
        .map(|t| {
            t.values()
                .iter()
                .map(|v| match v {
                    // Round floats so both plans quantize identically.
                    Value::Float(f) => format!("{:.9}", f),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Figure 3(a) naive plan ≡ optimized FilterRecommend plan, for
    /// arbitrary data and arbitrary uid/iid/rating predicates.
    #[test]
    fn optimizer_preserves_filter_semantics(
        ratings in ratings_strategy(),
        user in 1i64..12,
        items in proptest::collection::vec(1i64..12, 1..5),
        min_rating in 0u8..6,
    ) {
        let db = db_with(&ratings, "ItemCosCF");
        let item_list: Vec<String> = items.iter().map(i64::to_string).collect();
        let sql = format!(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {user} AND R.iid IN ({}) AND R.ratingval >= {}",
            item_list.join(", "),
            min_rating,
        );
        let (naive, optimized) = run_naive_and_optimized(&db, &sql);
        prop_assert_eq!(canonical(&naive), canonical(&optimized));
    }

    /// Naive join plan ≡ JoinRecommend plan, for arbitrary data.
    #[test]
    fn optimizer_preserves_join_semantics(
        ratings in ratings_strategy(),
        user in 1i64..12,
    ) {
        let db = db_with(&ratings, "ItemCosCF");
        db.execute("CREATE TABLE movies (mid INT, genre TEXT)").unwrap();
        let rows: Vec<String> = (1..12)
            .map(|m| format!("({m}, '{}')", if m % 2 == 0 { "Action" } else { "Drama" }))
            .collect();
        db.execute(&format!("INSERT INTO movies VALUES {}", rows.join(", ")))
            .unwrap();
        let sql = format!(
            "SELECT R.uid, R.iid, R.ratingval, M.genre \
             FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {user} AND M.mid = R.iid AND M.genre = 'Action'"
        );
        let (naive, optimized) = run_naive_and_optimized(&db, &sql);
        prop_assert_eq!(canonical(&naive), canonical(&optimized));
    }

    /// The materialized-index path returns the same rows as the online
    /// path for arbitrary data.
    #[test]
    fn index_path_equals_online_path(
        ratings in ratings_strategy(),
        user in 1i64..12,
    ) {
        let db = db_with(&ratings, "ItemCosCF");
        let sql = format!(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {user}"
        );
        let online = db.query(&sql).unwrap();
        db.materialize("prop").unwrap();
        let indexed = db.query(&sql).unwrap();
        prop_assert_eq!(canonical(&online), canonical(&indexed));
    }

    /// Recommendations never include pairs the user already rated, and
    /// every score is finite — for every algorithm.
    #[test]
    fn no_rated_pairs_and_finite_scores(
        ratings in ratings_strategy(),
        algo_idx in 0usize..6,
    ) {
        let algorithm = recdb::algo::Algorithm::ALL[algo_idx];
        let db = db_with(&ratings, algorithm.name());
        let rows = db.query(&format!(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING {algorithm}"
        )).unwrap();
        let rated: std::collections::HashSet<(i64, i64)> =
            ratings.iter().map(|&(u, i, _)| (u, i)).collect();
        for t in rows.rows() {
            let u = t.get(0).unwrap().as_int().unwrap();
            let i = t.get(1).unwrap().as_int().unwrap();
            let s = t.get(2).unwrap().as_f64().unwrap();
            prop_assert!(!rated.contains(&(u, i)), "({u},{i}) was already rated");
            prop_assert!(s.is_finite(), "score {s} not finite");
        }
    }

    /// INSERT → SELECT roundtrip: arbitrary values survive the slotted
    /// page encoding and come back unchanged through SQL.
    #[test]
    fn sql_value_roundtrip(
        a in any::<i64>(),
        b in -1e6f64..1e6,
        s in "[a-zA-Z0-9 ]{0,24}",
        flag in any::<bool>(),
        x in -1e3f64..1e3,
        y in -1e3f64..1e3,
    ) {
        let db = RecDb::new();
        db.execute("CREATE TABLE t (a INT, b FLOAT, s TEXT, f BOOL, p POINT)").unwrap();
        db.execute(&format!(
            "INSERT INTO t VALUES ({a}, {b:?}, '{s}', {flag}, POINT({x:?}, {y:?}))"
        )).unwrap();
        let rows = db.query("SELECT * FROM t").unwrap();
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(rows.value(0, "a").unwrap(), &Value::Int(a));
        prop_assert_eq!(rows.value(0, "b").unwrap(), &Value::Float(b));
        prop_assert_eq!(rows.value(0, "s").unwrap(), &Value::Text(s));
        prop_assert_eq!(rows.value(0, "f").unwrap(), &Value::Bool(flag));
        prop_assert_eq!(rows.value(0, "p").unwrap(), &Value::Point(x, y));
    }

    /// ORDER BY ... DESC LIMIT k returns the k largest values in order,
    /// whatever the data.
    #[test]
    fn order_by_limit_is_topk(
        ratings in ratings_strategy(),
        k in 1usize..8,
    ) {
        let db = db_with(&ratings, "ItemCosCF");
        let all = db.query(
            "SELECT R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF",
        ).unwrap();
        let mut scores: Vec<f64> = all
            .rows()
            .iter()
            .map(|t| t.get(0).unwrap().as_f64().unwrap())
            .collect();
        scores.sort_by(|a, b| b.total_cmp(a));
        scores.truncate(k);
        let top = db.query(&format!(
            "SELECT R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             ORDER BY R.ratingval DESC LIMIT {k}"
        )).unwrap();
        let got: Vec<f64> = top
            .rows()
            .iter()
            .map(|t| t.get(0).unwrap().as_f64().unwrap())
            .collect();
        prop_assert_eq!(got.len(), scores.len());
        for (g, e) in got.iter().zip(&scores) {
            prop_assert!((g - e).abs() < 1e-12, "{:?} vs {:?}", got, scores);
        }
    }
}

/// Arbitrary [`Value`] of every variant, including NULL, non-finite
/// floats, and unicode text.
fn float_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        float_strategy().prop_map(Value::Float),
        "[a-zA-Z0-9 '%\\\\]{0,24}".prop_map(Value::Text),
        // Unicode text: arbitrary scalar values (surrogate gaps fold to
        // U+FFFD), exercising multi-byte UTF-8 in the length-prefixed
        // encoding.
        proptest::collection::vec(any::<u32>(), 0..12).prop_map(|cs| {
            Value::Text(
                cs.into_iter()
                    .map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{FFFD}'))
                    .collect(),
            )
        }),
        any::<bool>().prop_map(Value::Bool),
        (float_strategy(), float_strategy()).prop_map(|(x, y)| Value::Point(x, y)),
        (
            float_strategy(),
            float_strategy(),
            float_strategy(),
            float_strategy()
        )
            .prop_map(|(a, b, c, d)| Value::Rect(a, b, c, d)),
    ]
}

/// Float-aware equality: the binary encoding must preserve exact bit
/// patterns (NaN payloads, signed zero), which `PartialEq` can't check.
fn bits_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Text(x), Value::Text(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Point(x0, y0), Value::Point(x1, y1)) => {
            x0.to_bits() == x1.to_bits() && y0.to_bits() == y1.to_bits()
        }
        (Value::Rect(a0, b0, c0, d0), Value::Rect(a1, b1, c1, d1)) => {
            a0.to_bits() == a1.to_bits()
                && b0.to_bits() == b1.to_bits()
                && c0.to_bits() == c1.to_bits()
                && d0.to_bits() == d1.to_bits()
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slotted-page binary encoding round-trips arbitrary tuples of
    /// every `Value` variant exactly — sizes agree, trailing bytes are
    /// not consumed, and float bit patterns survive. This is the codec
    /// the WAL and the checkpointed page files both rely on.
    #[test]
    fn tuple_binary_encoding_round_trips(
        values in proptest::collection::vec(value_strategy(), 0..12),
    ) {
        use recdb::storage::Tuple;
        let tuple = Tuple::new(values.clone());
        let mut buf = Vec::new();
        tuple.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), tuple.encoded_size(), "size accounting");
        // Decode must report exactly how many bytes it consumed, even
        // with unrelated bytes following (tuples are packed in pages).
        buf.extend_from_slice(&[0xEE, 0xDD, 0xCC]);
        let (decoded, used) = Tuple::decode(&buf).expect("decode");
        prop_assert_eq!(used, tuple.encoded_size());
        prop_assert_eq!(decoded.values().len(), values.len());
        for (got, want) in decoded.values().iter().zip(&values) {
            prop_assert!(bits_equal(got, want), "{:?} vs {:?}", got, want);
        }
    }
}

/// Possibly-empty ratings universe, small enough that worker shards
/// regularly degenerate (n = 0, n = 1, n < threads).
fn sparse_ratings_strategy() -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    proptest::collection::btree_set((1i64..10, 1i64..10), 0..40).prop_flat_map(|pairs| {
        let pairs: Vec<(i64, i64)> = pairs.into_iter().collect();
        let n = pairs.len();
        proptest::collection::vec(2u8..=10, n).prop_map(move |halves| {
            pairs
                .iter()
                .zip(&halves)
                .map(|(&(u, i), &h)| (u, i, h as f64 / 2.0))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel neighborhood build is bit-identical to the serial one
    /// for arbitrary data, thread counts, and truncation — including the
    /// shard-boundary edge cases (no ratings at all, single entity, more
    /// threads than entities, entities with empty vectors).
    #[test]
    fn parallel_neighborhood_build_matches_serial(
        ratings in sparse_ratings_strategy(),
        threads in 2usize..9,
        max_neighbors in proptest::option::of(1usize..6),
    ) {
        use recdb::algo::neighborhood::{build_item_neighborhood, build_user_neighborhood};
        use recdb::algo::{NeighborhoodParams, Rating, RatingsMatrix};
        let m = RatingsMatrix::from_ratings(
            ratings.iter().map(|&(u, i, r)| Rating::new(u, i, r)),
        );
        let serial = NeighborhoodParams {
            max_neighbors,
            threads: 1,
            ..NeighborhoodParams::cosine()
        };
        let parallel = NeighborhoodParams { threads, ..serial };
        prop_assert_eq!(
            build_item_neighborhood(&m, &parallel),
            build_item_neighborhood(&m, &serial)
        );
        prop_assert_eq!(
            build_user_neighborhood(&m, &parallel),
            build_user_neighborhood(&m, &serial)
        );
    }

    /// Bounded top-k selection ≡ stable sort + truncate, for arbitrary
    /// duplicate-heavy keys and any k (0, > len, …).
    #[test]
    fn bounded_topk_equals_stable_sort(
        keys in proptest::collection::vec(0u8..8, 0..100),
        k in 0usize..120,
    ) {
        let items: Vec<(u8, usize)> =
            keys.into_iter().enumerate().map(|(i, v)| (v, i)).collect();
        let got = recdb::algo::top_k_by(items.clone(), k, |a, b| a.0.cmp(&b.0));
        let mut want = items;
        want.sort_by_key(|a| a.0);
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Block-parallel SVD training is deterministic for a fixed
    /// (seed, threads) pair, even when shards degenerate to single users.
    #[test]
    fn parallel_svd_is_deterministic(
        ratings in sparse_ratings_strategy(),
        threads in 2usize..9,
        seed in 1u64..1000,
    ) {
        use recdb::algo::{Rating, RatingsMatrix, SvdModel, SvdParams};
        let params = SvdParams {
            factors: 2,
            epochs: 3,
            seed,
            threads,
            ..Default::default()
        };
        let matrix = || RatingsMatrix::from_ratings(
            ratings.iter().map(|&(u, i, r)| Rating::new(u, i, r)),
        );
        let a = SvdModel::train(matrix(), params);
        let b = SvdModel::train(matrix(), params);
        prop_assert_eq!(a.final_rmse(), b.final_rmse());
        for u in 0..matrix().n_users() {
            prop_assert_eq!(a.user_vector(u), b.user_vector(u));
        }
        for i in 0..matrix().n_items() {
            prop_assert_eq!(a.item_vector(i), b.item_vector(i));
        }
    }
}
