//! Cross-crate integration: the full pipeline from synthetic data through
//! the engine, checked for consistency between access paths, algorithms,
//! and against the OnTopDB baseline.

use recdb::algo::Algorithm;
use recdb::core::{RecDb, RecDbConfig};
use recdb::datasets::SyntheticSpec;
use recdb::exec::ResultSet;
use recdb::ontop::{OnTopDb, PredictionScope};

fn small_spec() -> SyntheticSpec {
    SyntheticSpec::movielens().scaled(0.02)
}

fn loaded_db() -> RecDb {
    let mut db = RecDb::new();
    recdb::datasets::generate(&small_spec())
        .load_into(&mut db)
        .unwrap();
    db
}

fn sorted_pairs(r: &ResultSet) -> Vec<(i64, i64, i64)> {
    // (uid, iid, score in milli-units) for order-insensitive comparison.
    let mut v: Vec<(i64, i64, i64)> = r
        .rows()
        .iter()
        .map(|t| {
            (
                t.get(0).unwrap().as_int().unwrap(),
                t.get(1).unwrap().as_int().unwrap(),
                (t.get(2).unwrap().as_f64().unwrap() * 1000.0).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// RecDB and OnTopDB must produce identical prediction sets for every
/// algorithm — the paper's comparison is about *performance*, not answers.
#[test]
fn recdb_and_ontop_agree_for_every_algorithm() {
    for algo in Algorithm::ALL {
        let db = loaded_db();
        db.execute(&format!(
            "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING {algo}"
        ))
        .unwrap();
        let native = db
            .query(&format!(
                "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING {algo} \
                 WHERE R.uid IN (1, 2, 3)"
            ))
            .unwrap();

        let mut ontop = OnTopDb::new(loaded_db()).unwrap();
        ontop
            .create_recommender("ratings", "uid", "iid", "ratingval", algo)
            .unwrap();
        let baseline = ontop
            .run(
                "ratings",
                algo,
                PredictionScope::AllUsers,
                "SELECT P.uid, P.iid, P.ratingval FROM _ontop_predictions AS P \
                 WHERE P.uid IN (1, 2, 3)",
            )
            .unwrap();
        assert_eq!(
            sorted_pairs(&native),
            sorted_pairs(&baseline),
            "{algo}: native and on-top answers diverge"
        );
        assert!(!native.is_empty(), "{algo}: no recommendations at all");
    }
}

/// The materialized index path must return exactly what the online path
/// returns, for every algorithm.
#[test]
fn index_and_online_paths_agree() {
    for algo in [Algorithm::ItemCosCF, Algorithm::UserCosCF, Algorithm::Svd] {
        let db = loaded_db();
        db.execute(&format!(
            "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING {algo}"
        ))
        .unwrap();
        let sql = format!(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING {algo} \
             WHERE R.uid = 2"
        );
        let online = db.query(&sql).unwrap();
        db.materialize("r").unwrap();
        let indexed = db.query(&sql).unwrap();
        assert_eq!(
            sorted_pairs(&online),
            sorted_pairs(&indexed),
            "{algo}: index path diverged from online path"
        );
    }
}

/// New ratings flow through maintenance into both the model and the
/// materialized index.
#[test]
fn maintenance_keeps_index_fresh() {
    let mut db = RecDb::with_config(RecDbConfig {
        maintenance_threshold_pct: 0.0, // rebuild on every insert
        ..RecDbConfig::default()
    });
    recdb::datasets::generate(&small_spec())
        .load_into(&mut db)
        .unwrap();
    db.execute(
        "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
         RATINGS FROM ratingval USING ItemCosCF",
    )
    .unwrap();
    db.materialize("r").unwrap();

    // Find an unseen pair for user 1 that is currently in the index.
    // Scope the read guard: holding it across the INSERT below would
    // block the engine's commit-time recommender update.
    let (item, _) = {
        let rec = db.recommender("r").unwrap();
        let idx = rec.index().unwrap();
        let entry = idx
            .iter_desc(1, None, None)
            .next()
            .expect("entry for user 1");
        entry
    };

    // User 1 rates it → maintenance fires → it must leave the index.
    db.execute(&format!("INSERT INTO ratings VALUES (1, {item}, 5.0)"))
        .unwrap();
    let (pending, idx) = {
        let rec = db.recommender("r").unwrap();
        (rec.pending_updates(), rec.index().unwrap())
    };
    assert_eq!(pending, 0, "maintenance ran");
    assert_eq!(idx.get(1, item), None, "now-rated pair dematerialized");
    assert!(idx.is_complete(1), "user list re-materialized in full");
    // And the query no longer recommends the rated item.
    let rows = db
        .query(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1",
        )
        .unwrap();
    assert!(rows
        .rows()
        .iter()
        .all(|t| t.get(1).unwrap().as_int() != Some(item)));
}

/// Filters, joins, sorting, and limits compose with the recommendation
/// operator and agree with manually filtered full output.
#[test]
fn composed_query_matches_manual_filtering() {
    let db = loaded_db();
    db.execute(
        "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
         RATINGS FROM ratingval USING ItemCosCF",
    )
    .unwrap();
    let full = db
        .query(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 3",
        )
        .unwrap();
    let filtered = db
        .query(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 3 AND R.ratingval >= 3.0 \
             ORDER BY R.ratingval DESC LIMIT 5",
        )
        .unwrap();
    let mut expected: Vec<f64> = full
        .rows()
        .iter()
        .map(|t| t.get(2).unwrap().as_f64().unwrap())
        .filter(|&s| s >= 3.0)
        .collect();
    expected.sort_by(|a, b| b.total_cmp(a));
    expected.truncate(5);
    let got: Vec<f64> = filtered
        .rows()
        .iter()
        .map(|t| t.get(2).unwrap().as_f64().unwrap())
        .collect();
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert!((g - e).abs() < 1e-12);
    }
}

/// The POI pipeline end to end on the Yelp-like dataset: recommendation +
/// spatial filter + combined ranking.
#[test]
fn poi_pipeline_end_to_end() {
    let mut db = RecDb::new();
    let dataset = recdb::datasets::generate(&SyntheticSpec::yelp().scaled(0.05));
    dataset.load_into(&mut db).unwrap();
    db.execute(
        "CREATE RECOMMENDER poi ON ratings USERS FROM uid ITEMS FROM iid \
         RATINGS FROM ratingval USING ItemCosCF",
    )
    .unwrap();
    let rows = db
        .query(
            "SELECT B.name, R.ratingval, \
                    CScore(R.ratingval, ST_Distance(B.loc, POINT(500, 500))) AS c \
             FROM ratings AS R, businesses AS B \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND R.iid = B.bid \
             AND ST_DWithin(B.loc, POINT(500, 500), 400) \
             ORDER BY CScore(R.ratingval, ST_Distance(B.loc, POINT(500, 500))) DESC \
             LIMIT 5",
        )
        .unwrap();
    assert!(rows.len() <= 5);
    // Combined scores are within [0, 1] and descending.
    let scores: Vec<f64> = rows
        .rows()
        .iter()
        .map(|t| t.get(2).unwrap().as_f64().unwrap())
        .collect();
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
}

/// Page-I/O cost shapes (§IV-A): a selective recommendation query touches
/// far fewer prediction computations than the all-pairs baseline; visible
/// through the shared page-read counters on the OnTopDB side.
#[test]
fn ontop_pays_data_movement_cost() {
    let mut ontop = OnTopDb::new(loaded_db()).unwrap();
    ontop
        .create_recommender("ratings", "uid", "iid", "ratingval", Algorithm::ItemCosCF)
        .unwrap();
    let stats = std::sync::Arc::clone(ontop.db().catalog().stats());
    stats.reset();
    ontop
        .run(
            "ratings",
            Algorithm::ItemCosCF,
            PredictionScope::AllUsers,
            "SELECT P.iid FROM _ontop_predictions AS P WHERE P.uid = 1",
        )
        .unwrap();
    let writes_all = stats.tuple_writes();

    // The single-user ablation writes far fewer tuples back to the DB.
    stats.reset();
    ontop
        .run(
            "ratings",
            Algorithm::ItemCosCF,
            PredictionScope::SingleUser(1),
            "SELECT P.iid FROM _ontop_predictions AS P WHERE P.uid = 1",
        )
        .unwrap();
    let writes_one = stats.tuple_writes();
    assert!(
        writes_one * 10 < writes_all,
        "single-user reload ({writes_one}) should be ≪ all-pairs ({writes_all})"
    );
}
