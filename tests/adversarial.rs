//! Adversarial-input properties: arbitrary hostile SQL must surface as
//! `Err(_)` (or valid rows) through the public [`RecDb`] API — never a
//! panic, hang, or corrupted engine. Statement execution is wrapped in
//! `catch_unwind` at the engine boundary, and the parser bounds
//! expression nesting, so even token soup and 5000-deep expressions are
//! ordinary errors.

use proptest::prelude::*;
use recdb::core::{EngineError, RecDb};

/// Tokens that commonly appear in (and confuse) SQL front ends: valid
/// keywords, operators, literals, and some outright garbage.
const TOKENS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "INSERT",
    "INTO",
    "VALUES",
    "CREATE",
    "TABLE",
    "RECOMMENDER",
    "RECOMMEND",
    "TO",
    "ON",
    "USING",
    "ORDER",
    "BY",
    "LIMIT",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "JOIN",
    "AS",
    "DROP",
    "UPDATE",
    "SET",
    "DELETE",
    "GROUP",
    "(",
    ")",
    ",",
    ";",
    "*",
    "=",
    "<>",
    "<",
    ">",
    "+",
    "-",
    "/",
    ".",
    "ratings",
    "uid",
    "iid",
    "ratingval",
    "R",
    "ItemCosCF",
    "SVD",
    "1",
    "42",
    "-1",
    "3.5",
    "0.0",
    "'text'",
    "''",
    "@#$%",
    "\\",
    "`",
    "9999999999999999999999",
];

fn db_with_table() -> RecDb {
    let db = RecDb::new();
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    db.execute("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0), (2, 3, 2.5)")
        .expect("seed rows");
    db
}

/// The engine survived if it can still run a plain query afterwards.
fn assert_still_serving(db: &mut RecDb) {
    let rows = db
        .query("SELECT uid, iid, ratingval FROM ratings")
        .expect("engine must keep serving after adversarial input");
    assert!(!rows.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Token soup: random sequences of plausible SQL tokens.
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..TOKENS.len(), 0..24)) {
        let sql: String = idx
            .iter()
            .map(|&i| TOKENS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let mut db = db_with_table();
        let _ = db.execute(&sql); // Ok or Err — both fine, panics are not
        assert_still_serving(&mut db);
    }

    /// Deeply nested expressions (parens, NOT chains, unary minus) are
    /// rejected by the parser's depth limit instead of overflowing the
    /// stack.
    #[test]
    fn deep_nesting_is_an_error_not_a_crash(depth in 200usize..3000, kind in 0u8..3) {
        let expr = match kind {
            0 => format!("{}1{}", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("{}ratingval > 1", "NOT ".repeat(depth)),
            _ => format!("{}ratingval", "-".repeat(depth)),
        };
        let sql = format!("SELECT uid FROM ratings WHERE {expr}");
        let mut db = db_with_table();
        match db.query(&sql) {
            Err(EngineError::Parse(_)) => {}
            other => return Err(format!("expected Parse error, got {other:?}")),
        }
        assert_still_serving(&mut db);
    }

    /// LIMIT extremes: zero, huge, and values far beyond the row count.
    #[test]
    fn limit_extremes_are_handled(limit in prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::from(u32::MAX)),
        Just(u64::MAX),
        1u64..1000,
    ]) {
        let mut db = db_with_table();
        let result = db.query(&format!(
            "SELECT uid FROM ratings ORDER BY ratingval DESC LIMIT {limit}"
        ));
        match result {
            Ok(rows) => prop_assert!(rows.len() as u64 <= limit.min(4)),
            Err(EngineError::Parse(_)) => {} // an out-of-range literal is a parse error
            Err(other) => return Err(format!("unexpected error: {other:?}")),
        }
        assert_still_serving(&mut db);
    }

    /// Queries against empty or dropped tables return rows or a clean
    /// error; a recommender over an empty table must not divide by zero.
    #[test]
    fn empty_and_dropped_tables_do_not_panic(case in 0u8..4) {
        let db = RecDb::new();
        db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
            .expect("create table");
        match case {
            0 => {
                let rows = db.query("SELECT uid FROM ratings").expect("empty scan");
                prop_assert_eq!(rows.len(), 0);
            }
            1 => {
                // Recommender over zero ratings.
                let _ = db.execute(
                    "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
                     RATINGS FROM ratingval USING ItemCosCF",
                );
                let _ = db.query(
                    "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5",
                );
            }
            2 => {
                db.execute("DROP TABLE ratings").expect("drop");
                prop_assert!(db.query("SELECT uid FROM ratings").is_err());
            }
            _ => {
                db.execute("DROP TABLE ratings").expect("drop");
                prop_assert!(db
                    .execute("INSERT INTO ratings VALUES (1, 1, 1.0)")
                    .is_err());
            }
        }
        // Whatever happened, fresh DDL still works.
        db.execute("CREATE TABLE t2 (a INT)").expect("ddl after abuse");
    }

    /// Mutating statements with hostile fragments: either apply cleanly
    /// or error; row counts stay coherent.
    #[test]
    fn hostile_mutations_keep_counts_coherent(
        uid in -5i64..5,
        cmp_idx in 0usize..4,
        lim in 0usize..6,
    ) {
        let cmp = ["=", "<>", "<", ">"][cmp_idx];
        let db = db_with_table();
        let before = db.query("SELECT uid FROM ratings").expect("count").len();
        let deleted = match db.execute(&format!("DELETE FROM ratings WHERE uid {cmp} {uid}")) {
            Ok(recdb::core::QueryResult::Deleted(n)) => n,
            Ok(_) => 0,
            Err(_) => 0,
        };
        prop_assert!(deleted <= before);
        let after = db.query("SELECT uid FROM ratings").expect("count").len();
        prop_assert_eq!(after, before - deleted);
        // A LIMIT on the remaining rows never exceeds them.
        let rows = db
            .query(&format!("SELECT uid FROM ratings LIMIT {lim}"))
            .expect("limited scan");
        prop_assert!(rows.len() <= lim.min(after));
    }
}

// ---------------------------------------------------------------------
// Wire-level adversarial input: byte soup at a live server socket
// ---------------------------------------------------------------------

use recdb::server::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Read one length-prefixed frame off a raw socket, if the peer sends one.
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes thrown at the server socket — raw, or framed with
    /// a *valid* length prefix around garbage, or framed with a hostile
    /// oversized prefix — must never panic the server or wedge it. After
    /// every abuse the server still answers a well-formed client.
    #[test]
    fn wire_byte_soup_never_kills_the_server(
        bytes in proptest::collection::vec(0u8..=255u8, 0..256),
        mode in 0u8..3,
        huge_len in 0x0100_0001u32..0xFFFF_FFFFu32,
    ) {
        let db = Arc::new(RecDb::new());
        let server = Server::start(
            Arc::clone(&db),
            ServerConfig {
                max_frame_bytes: 0x0100_0000, // 16 MiB default, explicit
                read_timeout: std::time::Duration::from_millis(500),
                idle_timeout: std::time::Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
        let _hello = read_raw_frame(&mut raw);
        match mode {
            0 => {
                // Raw soup: whatever the first 4 bytes announce, the
                // peer never delivers it; the read budget must reap us.
                let _ = raw.write_all(&bytes);
            }
            1 => {
                // A perfectly framed garbage payload: the server must
                // answer malformed_frame (or a typed result, if the
                // bytes happen to decode) and never panic.
                let _ = raw.write_all(&(bytes.len() as u32).to_be_bytes());
                let _ = raw.write_all(&bytes);
                if let Some(reply) = read_raw_frame(&mut raw) {
                    prop_assert!(!reply.is_empty());
                }
            }
            _ => {
                // Hostile length prefix beyond max_frame_bytes: clean
                // frame_too_large error, close, no allocation.
                let _ = raw.write_all(&huge_len.to_be_bytes());
                if let Some(reply) = read_raw_frame(&mut raw) {
                    let text = String::from_utf8_lossy(&reply).into_owned();
                    prop_assert!(text.contains("frame_too_large"), "{}", text);
                }
            }
        }
        drop(raw);

        // The server survived: a well-formed client gets service.
        let mut probe = Client::connect(server.addr()).expect("server still accepting");
        probe.ping().expect("server still serving");
        drop(probe);
        let report = server.shutdown();
        prop_assert_eq!(report.leaked_connections, 0);
        prop_assert_eq!(db.lock_table().held_count(), 0);
    }
}
