//! Adversarial-input properties: arbitrary hostile SQL must surface as
//! `Err(_)` (or valid rows) through the public [`RecDb`] API — never a
//! panic, hang, or corrupted engine. Statement execution is wrapped in
//! `catch_unwind` at the engine boundary, and the parser bounds
//! expression nesting, so even token soup and 5000-deep expressions are
//! ordinary errors.

use proptest::prelude::*;
use recdb::core::{EngineError, RecDb};

/// Tokens that commonly appear in (and confuse) SQL front ends: valid
/// keywords, operators, literals, and some outright garbage.
const TOKENS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "INSERT",
    "INTO",
    "VALUES",
    "CREATE",
    "TABLE",
    "RECOMMENDER",
    "RECOMMEND",
    "TO",
    "ON",
    "USING",
    "ORDER",
    "BY",
    "LIMIT",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "JOIN",
    "AS",
    "DROP",
    "UPDATE",
    "SET",
    "DELETE",
    "GROUP",
    "(",
    ")",
    ",",
    ";",
    "*",
    "=",
    "<>",
    "<",
    ">",
    "+",
    "-",
    "/",
    ".",
    "ratings",
    "uid",
    "iid",
    "ratingval",
    "R",
    "ItemCosCF",
    "SVD",
    "1",
    "42",
    "-1",
    "3.5",
    "0.0",
    "'text'",
    "''",
    "@#$%",
    "\\",
    "`",
    "9999999999999999999999",
];

fn db_with_table() -> RecDb {
    let db = RecDb::new();
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    db.execute("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0), (2, 3, 2.5)")
        .expect("seed rows");
    db
}

/// The engine survived if it can still run a plain query afterwards.
fn assert_still_serving(db: &mut RecDb) {
    let rows = db
        .query("SELECT uid, iid, ratingval FROM ratings")
        .expect("engine must keep serving after adversarial input");
    assert!(!rows.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Token soup: random sequences of plausible SQL tokens.
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..TOKENS.len(), 0..24)) {
        let sql: String = idx
            .iter()
            .map(|&i| TOKENS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let mut db = db_with_table();
        let _ = db.execute(&sql); // Ok or Err — both fine, panics are not
        assert_still_serving(&mut db);
    }

    /// Deeply nested expressions (parens, NOT chains, unary minus) are
    /// rejected by the parser's depth limit instead of overflowing the
    /// stack.
    #[test]
    fn deep_nesting_is_an_error_not_a_crash(depth in 200usize..3000, kind in 0u8..3) {
        let expr = match kind {
            0 => format!("{}1{}", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("{}ratingval > 1", "NOT ".repeat(depth)),
            _ => format!("{}ratingval", "-".repeat(depth)),
        };
        let sql = format!("SELECT uid FROM ratings WHERE {expr}");
        let mut db = db_with_table();
        match db.query(&sql) {
            Err(EngineError::Parse(_)) => {}
            other => return Err(format!("expected Parse error, got {other:?}")),
        }
        assert_still_serving(&mut db);
    }

    /// LIMIT extremes: zero, huge, and values far beyond the row count.
    #[test]
    fn limit_extremes_are_handled(limit in prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::from(u32::MAX)),
        Just(u64::MAX),
        1u64..1000,
    ]) {
        let mut db = db_with_table();
        let result = db.query(&format!(
            "SELECT uid FROM ratings ORDER BY ratingval DESC LIMIT {limit}"
        ));
        match result {
            Ok(rows) => prop_assert!(rows.len() as u64 <= limit.min(4)),
            Err(EngineError::Parse(_)) => {} // an out-of-range literal is a parse error
            Err(other) => return Err(format!("unexpected error: {other:?}")),
        }
        assert_still_serving(&mut db);
    }

    /// Queries against empty or dropped tables return rows or a clean
    /// error; a recommender over an empty table must not divide by zero.
    #[test]
    fn empty_and_dropped_tables_do_not_panic(case in 0u8..4) {
        let db = RecDb::new();
        db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
            .expect("create table");
        match case {
            0 => {
                let rows = db.query("SELECT uid FROM ratings").expect("empty scan");
                prop_assert_eq!(rows.len(), 0);
            }
            1 => {
                // Recommender over zero ratings.
                let _ = db.execute(
                    "CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid \
                     RATINGS FROM ratingval USING ItemCosCF",
                );
                let _ = db.query(
                    "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5",
                );
            }
            2 => {
                db.execute("DROP TABLE ratings").expect("drop");
                prop_assert!(db.query("SELECT uid FROM ratings").is_err());
            }
            _ => {
                db.execute("DROP TABLE ratings").expect("drop");
                prop_assert!(db
                    .execute("INSERT INTO ratings VALUES (1, 1, 1.0)")
                    .is_err());
            }
        }
        // Whatever happened, fresh DDL still works.
        db.execute("CREATE TABLE t2 (a INT)").expect("ddl after abuse");
    }

    /// Mutating statements with hostile fragments: either apply cleanly
    /// or error; row counts stay coherent.
    #[test]
    fn hostile_mutations_keep_counts_coherent(
        uid in -5i64..5,
        cmp_idx in 0usize..4,
        lim in 0usize..6,
    ) {
        let cmp = ["=", "<>", "<", ">"][cmp_idx];
        let db = db_with_table();
        let before = db.query("SELECT uid FROM ratings").expect("count").len();
        let deleted = match db.execute(&format!("DELETE FROM ratings WHERE uid {cmp} {uid}")) {
            Ok(recdb::core::QueryResult::Deleted(n)) => n,
            Ok(_) => 0,
            Err(_) => 0,
        };
        prop_assert!(deleted <= before);
        let after = db.query("SELECT uid FROM ratings").expect("count").len();
        prop_assert_eq!(after, before - deleted);
        // A LIMIT on the remaining rows never exceeds them.
        let rows = db
            .query(&format!("SELECT uid FROM ratings LIMIT {lim}"))
            .expect("limited scan");
        prop_assert!(rows.len() <= lim.min(after));
    }
}
