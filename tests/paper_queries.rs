//! Every SQL statement printed in the paper, executed end to end.
//!
//! Recommenders 1–3 (§III-A, §V-A) and Queries 1–8 (§III-B, §IV, §V-B) run
//! verbatim modulo two documented adaptations: movie ids join through
//! `M.mid` (the Figure 1 movies schema names its key `mid`), and Query 7/8's
//! free variable `ULoc` (the querying user's location, which PostGIS gets
//! from the session) is supplied as a `POINT(x, y)` literal.

use recdb::core::{QueryResult, RecDb};

/// The Figure 1 database.
fn figure1() -> RecDb {
    let db = RecDb::new();
    db.execute_script(
        "CREATE TABLE users (uid INT, name TEXT, city TEXT, age INT, gender TEXT);
         CREATE TABLE movies (mid INT, name TEXT, director TEXT, genre TEXT);
         CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
         INSERT INTO users VALUES
            (1, 'Alice', 'Minneapolis, MN', 18, 'Female'),
            (2, 'Bob', 'Austin, TX', 27, 'Male'),
            (3, 'Carol', 'Minneapolis, MN', 45, 'Female'),
            (4, 'Eve', 'San Diego, MN', 34, 'Female');
         INSERT INTO movies VALUES
            (1, 'Spartacus', 'Stanley Kubrick', 'Action'),
            (2, 'Inception', 'Christopher Nolan', 'Suspense'),
            (3, 'The Matrix', 'Lana Wachowski', 'Sci-Fi');
         INSERT INTO ratings VALUES
            (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5), (2, 3, 2.0),
            (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);",
    )
    .unwrap();
    db
}

/// §V's POI database: hotels and restaurants with locations, city regions.
fn poi_db() -> RecDb {
    let db = RecDb::new();
    db.execute_script(
        "CREATE TABLE hotels (vid INT, name TEXT, geom POINT);
         CREATE TABLE restaurants (vid INT, name TEXT, address TEXT, geom POINT);
         CREATE TABLE city (name TEXT, geom RECT);
         CREATE TABLE hotelratings (uid INT, iid INT, ratingval FLOAT);
         CREATE TABLE restratings (uid INT, iid INT, ratingval FLOAT);
         INSERT INTO city VALUES ('San Diego', RECT(0, 0, 100, 100)),
                                 ('Austin', RECT(100, 0, 200, 100));
         INSERT INTO hotels VALUES
            (1, 'Harbor Inn', POINT(10, 10)),
            (2, 'Gaslamp Suites', POINT(50, 50)),
            (3, 'Lone Star Lodge', POINT(150, 50));
         INSERT INTO restaurants VALUES
            (1, 'Taco Surf', '123 Shore Dr', POINT(12, 11)),
            (2, 'Pho Bay', '9 Harbor Blvd', POINT(48, 52)),
            (3, 'Brisket Bros', '77 Ranch Rd', POINT(155, 48));
         INSERT INTO hotelratings VALUES
            (1, 1, 4.0), (2, 1, 5.0), (2, 2, 4.0), (3, 2, 3.0), (3, 3, 4.0);
         INSERT INTO restratings VALUES
            (1, 1, 5.0), (2, 1, 4.0), (2, 2, 3.0), (3, 2, 5.0), (3, 3, 2.0);",
    )
    .unwrap();
    db
}

#[test]
fn recommender1_generalrec() {
    let db = figure1();
    let result = db
        .execute(
            "Create Recommender GeneralRec On Ratings \
             Users From uid Item From iid Ratings From ratingval \
             Using ItemCosCF",
        )
        .unwrap();
    assert!(matches!(result, QueryResult::RecommenderCreated { .. }));
}

#[test]
fn query1_top10_for_user1() {
    let db = figure1();
    db.execute(
        "Create Recommender GeneralRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    let rows = db
        .query(
            "Select R.uid, R.iid, R.ratingval From Ratings as R \
             Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF \
             Where R.uid=1 \
             Order By R.ratingVal Desc Limit 10",
        )
        .unwrap();
    assert_eq!(rows.len(), 2, "user 1 has two unseen movies");
    let scores: Vec<f64> = rows
        .rows()
        .iter()
        .map(|t| t.get(2).unwrap().as_f64().unwrap())
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "descending");
}

#[test]
fn query2_all_pairs_prediction() {
    let db = figure1();
    db.execute(
        "Create Recommender GeneralRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    let rows = db
        .query(
            "Select R.uid, R.iid, R.ratingval From Ratings as R \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF",
        )
        .unwrap();
    // 4 × 3 = 12 pairs, 7 rated → 5 unseen pairs predicted.
    assert_eq!(rows.len(), 5);
}

#[test]
fn query3_selective_items() {
    let db = figure1();
    db.execute(
        "Create Recommender GeneralRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    let rows = db
        .query(
            "Select R.iid, R.ratingval From Ratings as R \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF \
             Where R.uid=1 And R.iid In (1,2,3,4,5)",
        )
        .unwrap();
    // Items 2 and 3 are unseen by user 1; items 4, 5 don't exist.
    assert_eq!(rows.len(), 2);
}

#[test]
fn query4_action_movies_join() {
    let db = figure1();
    db.execute(
        "Create Recommender GeneralRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    // User 4 rated only Inception; Spartacus is the unseen Action movie.
    let rows = db
        .query(
            "Select R.uid, M.name, R.ratingval From Ratings as R, Movies as M \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF \
             Where R.uid=4 And M.mid = R.iid And M.genre='Action'",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.value(0, "name").unwrap().as_text(), Some("Spartacus"));
}

#[test]
fn query5_svd_top5_action() {
    let db = figure1();
    db.execute(
        "Create Recommender SvdRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using SVD",
    )
    .unwrap();
    let rows = db
        .query(
            "Select M.name, R.ratingval From Ratings as R, Movies M \
             Recommend R.iid To R.uid On R.ratingval Using SVD \
             Where R.uid=1 And M.mid=R.iid And M.genre='Action' \
             Order By R.ratingval Desc Limit 5",
        )
        .unwrap();
    // User 1 already rated the only Action movie → empty, but valid.
    assert_eq!(rows.len(), 0);
    // A user who hasn't rated Spartacus gets it.
    let rows = db
        .query(
            "Select M.name, R.ratingval From Ratings as R, Movies M \
             Recommend R.iid To R.uid On R.ratingval Using SVD \
             Where R.uid=4 And M.mid=R.iid And M.genre='Action' \
             Order By R.ratingval Desc Limit 5",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn recommenders_2_and_3_poi() {
    let db = poi_db();
    db.execute(
        "Create Recommender POI_ItemCosCF_Rec On HotelRatings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    // The paper's Recommender 3 text says UserPearCF but its SQL says SVD;
    // create both to cover either reading.
    db.execute(
        "Create Recommender POI_SVD_Rec On RestRatings \
         Users From uid Item From iid Ratings From ratingval Using SVD",
    )
    .unwrap();
    db.execute(
        "Create Recommender POI_UserPearCF_Rec On RestRatings \
         Users From uid Item From iid Ratings From ratingval Using UserPearCF",
    )
    .unwrap();
    assert_eq!(db.recommender_names().len(), 3);
}

#[test]
fn query6_st_contains() {
    let db = poi_db();
    db.execute(
        "Create Recommender POI_ItemCosCF_Rec On HotelRatings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    let rows = db
        .query(
            "Select H.name, R.ratingval \
             From HotelRatings as R, Hotels as H, City as C \
             Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF \
             Where R.uid=1 AND R.iid=H.vid AND C.name = 'San Diego' \
             AND ST_Contains(C.geom, H.geom)",
        )
        .unwrap();
    // User 1 rated hotel 1; hotels 2 (San Diego) and 3 (Austin) are
    // unseen, but only hotel 2 lies inside San Diego.
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows.value(0, "name").unwrap().as_text(),
        Some("Gaslamp Suites")
    );
}

#[test]
fn query7_st_dwithin() {
    let db = poi_db();
    db.execute(
        "Create Recommender POI_UserPearCF_Rec On RestRatings \
         Users From uid Item From iid Ratings From ratingval Using UserPearCF",
    )
    .unwrap();
    // ULoc := POINT(10, 10); radius 60 covers restaurants 1 and 2 only.
    let rows = db
        .query(
            "Select V.name, V.address From RestRatings as R, Restaurants as V \
             Recommend R.iid To R.uid On R.ratingVal Using UserPearCF \
             Where R.uid=1 AND R.iid=V.vid \
             AND ST_DWithin(POINT(10, 10), V.geom, 60) \
             Order By R.ratingVal Desc Limit 10",
        )
        .unwrap();
    // User 1 rated restaurant 1 → only restaurant 2 is unseen and nearby.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.value(0, "name").unwrap().as_text(), Some("Pho Bay"));
}

#[test]
fn query8_cscore_combined_ranking() {
    let db = poi_db();
    db.execute(
        "Create Recommender POI_UserPearCF_Rec On RestRatings \
         Users From uid Item From iid Ratings From ratingval Using UserPearCF",
    )
    .unwrap();
    let rows = db
        .query(
            "Select V.name, V.address From RestRatings as R, Restaurants as V \
             Recommend R.iid To R.uid On R.ratingVal Using UserPearCF \
             Where R.uid=1 AND R.iid=V.vid \
             Order By CScore(R.ratingVal, ST_Distance(V.geom, POINT(10, 10))) Desc \
             Limit 3",
        )
        .unwrap();
    // Two unseen restaurants for user 1 → both returned, combined-ranked.
    assert_eq!(rows.len(), 2);
    // Pho Bay (near, similar users liked it) outranks distant Brisket Bros.
    assert_eq!(rows.value(0, "name").unwrap().as_text(), Some("Pho Bay"));
}

#[test]
fn drop_recommender_statement() {
    let db = figure1();
    db.execute(
        "Create Recommender GeneralRec On Ratings \
         Users From uid Item From iid Ratings From ratingval Using ItemCosCF",
    )
    .unwrap();
    db.execute("DROP RECOMMENDER GeneralRec").unwrap();
    assert!(db
        .query(
            "Select R.uid From Ratings as R \
             Recommend R.iid To R.uid On R.ratingval Using ItemCosCF",
        )
        .is_err());
}
