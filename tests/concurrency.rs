//! Concurrency acceptance tests: N reader × M writer stress against an
//! `Arc`-shared engine, checked for torn reads in flight and for lost
//! updates against a serially-replayed shadow engine; plus the targeted
//! lock-behaviour guarantees (readers never block each other, contended
//! writes time out, cancelled waiters return promptly) and crash
//! recovery in the middle of a concurrent run.
//!
//! Thread counts and workload sizes follow the `RECDB_STRESS_*`
//! environment variables (see [`StressConfig::from_env`]); the CI
//! `concurrency-stress` job raises them and sweeps `RECDB_FAULT_SEED`
//! over {1, 7, 42} so the seeded commit/rollback schedule varies.

use recdb::core::{EngineError, QueryGuard, RecDb, RecDbConfig};
use recdb::exec::ResultSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const RECOMMEND_SQL: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";

const CREATE_REC_SQL: &str = "CREATE RECOMMENDER StressRec ON ratings \
     USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF";

/// Deterministic base data: 6 users × 8 items with one gap per user, the
/// same layout the robustness suite uses.
fn seed_ratings(db: &RecDb) {
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    let mut rows = Vec::new();
    for uid in 1..=6i64 {
        for iid in 1..=8i64 {
            if (uid + iid) % 7 == 0 {
                continue;
            }
            let rating = 1.0 + ((uid * 3 + iid * 5) % 9) as f64 / 2.0;
            rows.push(format!("({uid}, {iid}, {rating:.1})"));
        }
    }
    let sql = format!("INSERT INTO ratings VALUES {}", rows.join(", "));
    db.execute(&sql).expect("seed inserts");
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "recdb-conc-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

/// splitmix64 — the seeded schedule for commit/rollback decisions and
/// reader probe targets. Deterministic per (seed, lane, step).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Workload shape, overridable from the environment for the CI stress job.
#[derive(Debug, Clone, Copy)]
struct StressConfig {
    readers: usize,
    writers: usize,
    txns_per_writer: usize,
    queries_per_reader: usize,
    seed: u64,
}

impl StressConfig {
    fn from_env() -> Self {
        StressConfig {
            readers: env_usize("RECDB_STRESS_READERS", 4),
            writers: env_usize("RECDB_STRESS_WRITERS", 2),
            txns_per_writer: env_usize("RECDB_STRESS_TXNS", 40),
            queries_per_reader: env_usize("RECDB_STRESS_QUERIES", 160),
            seed: std::env::var("RECDB_FAULT_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(42),
        }
    }

    /// Statements the workload will issue: every writer transaction is
    /// BEGIN + 3 INSERTs + COMMIT/ROLLBACK, every reader probe is one
    /// SELECT (with a RECOMMEND every fourth step).
    fn total_statements(&self) -> usize {
        self.writers * self.txns_per_writer * 5
            + self.readers * self.queries_per_reader
            + self.readers * self.queries_per_reader / 4
    }
}

/// Marker rows for writer `w`, transaction `s`: three rows under one
/// synthetic uid, so a torn read is visible as a count of 1 or 2.
fn marker_uid(w: usize, s: usize) -> i64 {
    1_000 + (w as i64) * 1_000 + s as i64
}

fn marker_rating(w: usize, s: usize, k: usize) -> f64 {
    1.0 + ((w * 7 + s * 3 + k) % 9) as f64 / 2.0
}

fn commits(seed: u64, w: usize, s: usize) -> bool {
    // ~75% commit, 25% rollback, deterministic per seed.
    !mix(seed ^ ((w as u64) << 32) ^ s as u64).is_multiple_of(4)
}

/// One writer transaction through a session: BEGIN, three marker
/// inserts, then the seeded COMMIT or ROLLBACK. Returns true when the
/// COMMIT was acknowledged.
fn run_writer_txn(session: &mut recdb::core::Session<'_>, seed: u64, w: usize, s: usize) -> bool {
    session.execute("BEGIN").expect("begin");
    let uid = marker_uid(w, s);
    for k in 0..3usize {
        let iid = k as i64 + 1;
        let rating = marker_rating(w, s, k);
        session
            .execute(&format!(
                "INSERT INTO ratings VALUES ({uid}, {iid}, {rating:.1})"
            ))
            .expect("marker insert");
    }
    if commits(seed, w, s) {
        session.execute("COMMIT").expect("commit");
        true
    } else {
        session.execute("ROLLBACK").expect("rollback");
        false
    }
}

/// One reader probe: count the marker rows of a seeded (writer, txn)
/// target — strict 2PL means the count must be 0 (not committed yet /
/// rolled back) or 3 (committed), never 1 or 2.
fn run_reader_probe(db: &RecDb, seed: u64, cfg: StressConfig, r: usize, q: usize) {
    let roll = mix(seed ^ 0xDEAD ^ ((r as u64) << 40) ^ q as u64);
    let w = (roll as usize) % cfg.writers;
    let s = ((roll >> 16) as usize) % cfg.txns_per_writer;
    let uid = marker_uid(w, s);
    let rows = db
        .query(&format!("SELECT iid FROM ratings WHERE uid = {uid}"))
        .expect("reader probe");
    assert!(
        rows.is_empty() || rows.len() == 3,
        "torn read: saw {} of 3 marker rows for writer {w} txn {s}",
        rows.len()
    );
    if q.is_multiple_of(4) {
        let recs = db.query(RECOMMEND_SQL).expect("concurrent recommend");
        assert!(!recs.is_empty(), "recommendation under concurrency");
    }
}

/// Sorted full contents of the ratings table, in milli-units, for
/// order-insensitive state comparison between engines.
fn table_state(db: &RecDb) -> Vec<(i64, i64, i64)> {
    let rows: ResultSet = db
        .query("SELECT uid, iid, ratingval FROM ratings")
        .expect("state scan");
    let mut v: Vec<(i64, i64, i64)> = rows
        .rows()
        .iter()
        .map(|t| {
            (
                t.get(0).unwrap().as_int().unwrap(),
                t.get(1).unwrap().as_int().unwrap(),
                (t.get(2).unwrap().as_f64().unwrap() * 1000.0).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Replay exactly the acknowledged commits serially into a fresh engine
/// and return its final state.
fn shadow_state(acknowledged: &[(usize, usize)]) -> Vec<(i64, i64, i64)> {
    let shadow = RecDb::with_config(RecDbConfig {
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    seed_ratings(&shadow);
    for &(w, s) in acknowledged {
        let uid = marker_uid(w, s);
        for k in 0..3usize {
            let iid = k as i64 + 1;
            let rating = marker_rating(w, s, k);
            shadow
                .execute(&format!(
                    "INSERT INTO ratings VALUES ({uid}, {iid}, {rating:.1})"
                ))
                .expect("shadow insert");
        }
    }
    table_state(&shadow)
}

// ---------------------------------------------------------------------
// The stress test: linearizable reads in flight, serial shadow at rest
// ---------------------------------------------------------------------

/// ISSUE acceptance: ≥4 readers and ≥2 writers hammer one shared engine
/// with ≥1k statements. Readers must never observe a torn transaction,
/// and the final table state must equal a serial replay of exactly the
/// acknowledged commits — no lost updates, no resurrected rollbacks.
#[test]
fn stress_readers_and_writers_match_serial_shadow() {
    let cfg = StressConfig::from_env();
    assert!(
        cfg.total_statements() >= 1_000,
        "stress must issue >= 1k statements (got {}); raise RECDB_STRESS_*",
        cfg.total_statements()
    );
    let db = RecDb::with_config(RecDbConfig {
        auto_maintenance: false, // keep commits cheap; the model serves stale
        ..RecDbConfig::default()
    });
    seed_ratings(&db);
    db.execute(CREATE_REC_SQL).expect("create recommender");

    let mut acknowledged: Vec<(usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..cfg.writers {
            let db = &db;
            writer_handles.push(scope.spawn(move || {
                let mut session = db.session();
                let mut committed = Vec::new();
                for s in 0..cfg.txns_per_writer {
                    if run_writer_txn(&mut session, cfg.seed, w, s) {
                        committed.push((w, s));
                    }
                }
                committed
            }));
        }
        let mut reader_handles = Vec::new();
        for r in 0..cfg.readers {
            let db = &db;
            reader_handles.push(scope.spawn(move || {
                for q in 0..cfg.queries_per_reader {
                    run_reader_probe(db, cfg.seed, cfg, r, q);
                }
            }));
        }
        for h in reader_handles {
            h.join().expect("reader thread");
        }
        for h in writer_handles {
            acknowledged.extend(h.join().expect("writer thread"));
        }
    });

    // Every lock is back in the pool once the run is over.
    assert_eq!(db.lock_table().held_count(), 0, "locks leaked");
    assert_eq!(
        table_state(&db),
        shadow_state(&acknowledged),
        "concurrent run diverged from the serial replay of its commits"
    );
}

/// Crash in the middle of a concurrent run: drop the durable engine with
/// no final checkpoint while every writer transaction's fate is known,
/// then reopen. Recovery must reconstruct exactly the acknowledged
/// commits — rolled-back and unfinished work stays gone.
#[test]
fn crash_mid_concurrent_run_recovers_exactly_acknowledged_commits() {
    let dir = temp_dir("crash");
    let _ = std::fs::remove_dir_all(&dir);
    let seed = StressConfig::from_env().seed;
    let writers = 2usize;
    let txns = 12usize;

    let mut acknowledged: Vec<(usize, usize)> = Vec::new();
    {
        let db = RecDb::open_with_config(RecDbConfig {
            data_dir: Some(dir.clone()),
            auto_maintenance: false,
            ..RecDbConfig::default()
        })
        .expect("open durable engine");
        seed_ratings(&db);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..writers {
                let db = &db;
                handles.push(scope.spawn(move || {
                    let mut session = db.session();
                    let mut committed = Vec::new();
                    for s in 0..txns {
                        if run_writer_txn(&mut session, seed, w, s) {
                            committed.push((w, s));
                        }
                    }
                    committed
                }));
            }
            for h in handles {
                acknowledged.extend(h.join().expect("writer thread"));
            }
        });
        // Dropped here without a checkpoint: the WAL alone carries the run.
    }

    let db = RecDb::open_with_config(RecDbConfig {
        data_dir: Some(dir.clone()),
        auto_maintenance: false,
        ..RecDbConfig::default()
    })
    .expect("reopen after crash");
    assert_eq!(
        table_state(&db),
        shadow_state(&acknowledged),
        "recovery must replay exactly the acknowledged commits"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// ---------------------------------------------------------------------
// Targeted lock behaviour
// ---------------------------------------------------------------------

/// Readers share the lock: with a zero lock timeout (any wait at all
/// fails), a second session's reads succeed while a read transaction is
/// open — concurrent readers never block each other.
#[test]
fn concurrent_readers_never_block() {
    let db = RecDb::with_config(RecDbConfig {
        lock_timeout: Duration::ZERO,
        ..RecDbConfig::default()
    });
    seed_ratings(&db);
    let mut holder = db.session();
    holder.execute("BEGIN").expect("begin");
    holder
        .query("SELECT uid FROM ratings")
        .expect("reader holds S");
    // Any number of concurrent readers get in without waiting at all.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let db = &db;
            scope.spawn(move || {
                db.query("SELECT uid FROM ratings")
                    .expect("shared read must not wait");
            });
        }
    });
    holder.execute("COMMIT").expect("commit");
}

/// ISSUE acceptance: a contended write under a zero lock timeout fails
/// with `LockTimeout` naming the table — it does not wait, wedge, or
/// panic — and succeeds once the holder commits.
#[test]
fn zero_timeout_contended_write_times_out() {
    let db = RecDb::with_config(RecDbConfig {
        lock_timeout: Duration::ZERO,
        ..RecDbConfig::default()
    });
    seed_ratings(&db);
    let mut holder = db.session();
    holder.execute("BEGIN").expect("begin");
    holder
        .execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .expect("holder takes X");
    match db.execute("INSERT INTO ratings VALUES (2, 7, 3.0)") {
        Err(EngineError::LockTimeout { table, .. }) => assert_eq!(table, "ratings"),
        other => panic!("expected LockTimeout, got {other:?}"),
    }
    holder.execute("COMMIT").expect("commit");
    db.execute("INSERT INTO ratings VALUES (2, 7, 3.0)")
        .expect("write after release");
}

/// A waiter parked on a lock honours its guard's cancellation: it
/// returns `Cancelled` promptly (well before the lock timeout), and the
/// engine keeps serving.
#[test]
fn cancelled_lock_waiter_returns_promptly() {
    let db = RecDb::with_config(RecDbConfig {
        lock_timeout: Duration::from_secs(60), // a full wait would hang the test
        ..RecDbConfig::default()
    });
    seed_ratings(&db);
    let mut holder = db.session();
    holder.execute("BEGIN").expect("begin");
    holder
        .execute("INSERT INTO ratings VALUES (1, 7, 2.0)")
        .expect("holder takes X");

    let guard = QueryGuard::unlimited();
    let handle = guard.cancel_handle();
    let started = Instant::now();
    std::thread::scope(|scope| {
        let db = &db;
        let waiter = scope
            .spawn(move || db.execute_with_guard("INSERT INTO ratings VALUES (2, 7, 3.0)", guard));
        std::thread::sleep(Duration::from_millis(50));
        handle.cancel();
        match waiter.join().expect("waiter thread") {
            Err(EngineError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    });
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "cancellation must not wait out the lock timeout"
    );
    holder.execute("COMMIT").expect("commit");
    db.execute("INSERT INTO ratings VALUES (2, 7, 3.0)")
        .expect("engine still serving");
}
