//! Observability acceptance tests: engine-wide metrics move as a scripted
//! session runs, `EXPLAIN ANALYZE` actuals agree with real cardinalities,
//! timings are deterministic under an injected manual clock, and the
//! Prometheus rendering is well-formed.

use recdb::core::{GovernorConfig, RecDb, RecDbConfig};
use recdb::obs::ManualClock;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "recdb-obs-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

const SCHEMA: &str = "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
     INSERT INTO ratings VALUES
        (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0), (2, 3, 5.0),
        (3, 2, 2.0), (3, 3, 4.0), (4, 1, 1.0), (4, 3, 3.5);
     CREATE RECOMMENDER obs ON ratings USERS FROM uid ITEMS FROM iid \
        RATINGS FROM ratingval USING ItemCosCF;";

const TOPK: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";

#[test]
fn counters_move_across_a_scripted_durable_session() {
    let dir = temp_dir("session");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = RecDb::open(&dir).expect("open durable engine");
        db.execute_script(SCHEMA).expect("schema + recommender");

        // A plain scan, so the SeqScan rows counter moves too.
        db.query("SELECT uid, iid FROM ratings")
            .expect("plain scan");
        // Before materialization the score index cannot serve the query:
        // the planner falls back to online FilterRecommend (a miss).
        db.query(TOPK).expect("online query");
        db.materialize("obs").expect("materialize");
        // Now the same query is served from the RecScoreIndex (a hit).
        db.query(TOPK).expect("indexed query");
        db.checkpoint().expect("checkpoint");

        let snap = db.metrics_snapshot();
        assert_eq!(
            snap.counter("recdb_statements_total{kind=\"create_table\"}"),
            1
        );
        assert_eq!(snap.counter("recdb_statements_total{kind=\"insert\"}"), 1);
        assert_eq!(
            snap.counter("recdb_statements_total{kind=\"create_recommender\"}"),
            1
        );
        assert_eq!(snap.counter("recdb_statements_total{kind=\"select\"}"), 3);
        assert!(snap.counter("recdb_rows_scanned_total") > 0, "{snap:?}");
        assert!(snap.counter("recdb_rows_returned_total") > 0, "{snap:?}");
        assert_eq!(snap.counter("recdb_recscoreindex_misses_total"), 1);
        assert_eq!(snap.counter("recdb_recscoreindex_hits_total"), 1);
        assert!(snap.counter("recdb_wal_appends_total") > 0, "{snap:?}");
        assert!(snap.counter("recdb_wal_appended_bytes_total") > 0);
        assert!(snap.counter("recdb_wal_fsyncs_total") > 0, "{snap:?}");
        let build = snap
            .histogram("recdb_model_build_micros{algorithm=\"ItemCosCF\"}")
            .expect("model build histogram");
        assert_eq!(build.count, 1);
        assert!(
            snap.gauge("recdb_materialized_entries{recommender=\"obs\"}") > 0,
            "{snap:?}"
        );
        // Crash here: no final checkpoint after this insert, so the next
        // open must replay it from the WAL.
        db.execute("INSERT INTO ratings VALUES (5, 1, 2.0)")
            .expect("post-checkpoint insert");
    }
    let db = RecDb::open(&dir).expect("reopen");
    let snap = db.metrics_snapshot();
    assert!(
        snap.counter("recdb_recovery_replayed_records_total") > 0,
        "the uncheckpointed insert must be replayed: {snap:?}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn cache_manager_decisions_are_counted() {
    let db = RecDb::with_config(RecDbConfig {
        // Admit everything Algorithm 4 considers, so the workload below
        // is guaranteed to move the admission counter.
        hotness_threshold: 0.0,
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    db.execute_script(SCHEMA).expect("schema + recommender");
    // Algorithm 4 only scores pairs *touched since the last run*: user 1
    // must issue queries and some item must absorb rating inserts. Item 3
    // is unseen by user 1, so (1, 3) is a materialization candidate.
    for round in 0..5 {
        db.query(TOPK).expect("workload query");
        db.execute(&format!(
            "INSERT INTO ratings VALUES ({}, 3, 4.0)",
            100 + round
        ))
        .expect("workload insert");
    }
    let decision = db.run_cache_manager("obs").expect("cache manager");
    let snap = db.metrics_snapshot();
    assert!(!decision.admitted.is_empty(), "{decision:?}");
    assert_eq!(
        snap.counter("recdb_cache_admitted_total"),
        decision.admitted.len() as u64
    );
    assert_eq!(
        snap.counter("recdb_cache_evicted_total"),
        decision.evicted.len() as u64
    );
    assert_eq!(
        snap.gauge("recdb_materialized_entries{recommender=\"obs\"}"),
        decision.admitted.len() as i64 - decision.evicted.len() as i64
    );
}

#[test]
fn explain_analyze_row_counts_match_actual_cardinality() {
    let db = RecDb::new();
    db.execute_script(SCHEMA).expect("schema + recommender");
    let expected = db.query(TOPK).expect("plain query").len();
    assert!(expected > 0);

    let plan = db
        .query(&format!("EXPLAIN ANALYZE {TOPK}"))
        .expect("explain analyze");
    let lines: Vec<String> = (0..plan.len())
        .map(|i| plan.value(i, "plan").expect("plan column").to_string())
        .collect();
    let root = &lines[0];
    assert!(
        root.contains(&format!("rows={expected}")),
        "root actuals {root:?} must match the plain query's {expected} rows"
    );
    assert!(
        lines.iter().any(|l| l.contains("Recommend")),
        "plan tree must show the recommendation operator: {lines:?}"
    );
    assert!(
        lines.last().expect("total line").starts_with("Total:"),
        "{lines:?}"
    );
    // Every operator line carries actuals.
    for line in &lines[..lines.len() - 1] {
        assert!(
            line.contains("rows=") && line.contains("calls=") && line.contains("time="),
            "{line:?}"
        );
    }
}

#[test]
fn manual_clock_makes_explain_analyze_deterministic() {
    let run = || -> Vec<String> {
        let db = RecDb::with_config(RecDbConfig {
            profile_clock: Some(Arc::new(ManualClock::new())),
            ..RecDbConfig::default()
        });
        db.execute_script(SCHEMA).expect("schema + recommender");
        let plan = db
            .query(&format!("EXPLAIN ANALYZE {TOPK}"))
            .expect("explain analyze");
        (0..plan.len())
            .map(|i| plan.value(i, "plan").expect("plan column").to_string())
            .collect()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "frozen clock must give byte-stable output");
    assert!(
        first
            .iter()
            .all(|l| !l.contains("time=") || l.contains("time=0.000ms")),
        "a never-advanced clock reads zero elapsed: {first:?}"
    );
}

#[test]
fn governor_cancellations_are_counted_by_cause() {
    let db = RecDb::with_config(RecDbConfig {
        governor: GovernorConfig {
            row_budget: Some(3),
            ..GovernorConfig::default()
        },
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    db.execute("CREATE TABLE t (a INT)").expect("create");
    db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
        .expect("insert");
    db.query("SELECT a FROM t")
        .expect_err("row budget must trip");
    let snap = db.metrics_snapshot();
    assert_eq!(
        snap.counter("recdb_governor_cancellations_total{cause=\"rows\"}"),
        1,
        "{snap:?}"
    );
}

/// Transaction outcomes and lock waits feed their counters: commits,
/// rollbacks, and a lock timeout each land in `recdb_txn_total`, and the
/// contended acquisition shows up in `recdb_lock_waits_total` plus the
/// `recdb_lock_wait_micros` histogram.
#[test]
fn transaction_and_lock_metrics_are_counted() {
    let db = RecDb::with_config(RecDbConfig {
        lock_timeout: std::time::Duration::ZERO, // contended writes fail fast
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    db.execute("CREATE TABLE t (a INT)").expect("create"); // autocommit = commit #1
    let mut writer = db.session();
    writer.execute("BEGIN").expect("begin");
    writer.execute("INSERT INTO t VALUES (1)").expect("insert");
    writer.execute("COMMIT").expect("commit"); // commit #2
    writer.execute("BEGIN").expect("begin");
    writer.execute("INSERT INTO t VALUES (2)").expect("insert");
    writer.execute("ROLLBACK").expect("rollback"); // abort #1

    // Hold an exclusive lock open and contend from a second session.
    writer.execute("BEGIN").expect("begin");
    writer.execute("INSERT INTO t VALUES (3)").expect("insert");
    let mut other = db.session();
    other
        .execute("INSERT INTO t VALUES (4)")
        .expect_err("zero-timeout contended write must time out"); // timeout #1
    writer.execute("COMMIT").expect("commit"); // commit #3

    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("recdb_txn_total{outcome=\"commit\"}"), 3);
    assert_eq!(snap.counter("recdb_txn_total{outcome=\"abort\"}"), 1);
    assert_eq!(snap.counter("recdb_txn_total{outcome=\"timeout\"}"), 1);
    assert_eq!(snap.counter("recdb_lock_waits_total"), 1, "{snap:?}");
    let waits = snap
        .histogram("recdb_lock_wait_micros")
        .expect("lock wait histogram");
    assert_eq!(waits.count, 1);
}

#[test]
fn prometheus_render_is_well_formed() {
    let db = RecDb::new();
    db.execute_script(SCHEMA).expect("schema + recommender");
    db.query("SELECT uid, iid FROM ratings")
        .expect("plain scan");
    db.query(TOPK).expect("query");
    let snap = db.metrics_snapshot();
    let text = db.render_metrics();

    // Minimal exposition-format parser: every line is either a `# TYPE`
    // header or `series value` with a numeric value.
    let mut families = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            families.push(parts.next().expect("family name").to_owned());
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "{line:?}"
            );
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty(), "{line:?}");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("non-numeric sample {line:?}"));
        }
    }
    for family in [
        "recdb_statements_total",
        "recdb_rows_scanned_total",
        "recdb_rows_returned_total",
        "recdb_model_build_micros",
    ] {
        assert!(families.contains(&family.to_owned()), "missing {family}");
    }
    // The render agrees with the snapshot it came from.
    assert!(text.contains(&format!(
        "recdb_rows_returned_total {}",
        snap.counter("recdb_rows_returned_total")
    )));
    assert!(text.contains(&format!(
        "recdb_statements_total{{kind=\"select\"}} {}",
        snap.counter("recdb_statements_total{kind=\"select\"}")
    )));
}
