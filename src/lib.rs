//! # RecDB-rs
//!
//! A from-scratch Rust reproduction of **RecDB** — *"Database System Support
//! for Personalized Recommendation Applications"* (Sarwat et al., ICDE 2017):
//! a relational engine with native, declarative recommendation support.
//!
//! This façade crate re-exports the public API of every subsystem:
//!
//! * [`storage`] — slotted-page heaps, B-tree indexes, catalog, I/O stats
//! * [`wal`] — checksummed append-only write-ahead log (crash durability)
//! * [`algo`] — collaborative filtering + matrix factorization models
//! * [`sql`] — the RecDB SQL dialect (`CREATE RECOMMENDER`, `RECOMMEND` clause)
//! * [`exec`] — logical plans, optimizer, Volcano operators
//! * [`spatial`] — geometry + `ST_*` functions (PostGIS substitute)
//! * [`guard`] — cooperative resource governor (deadlines, row/memory budgets)
//! * [`fault`] — deterministic fault injection for robustness tests
//! * [`obs`] — metrics registry, per-operator profiles, `EXPLAIN ANALYZE` data
//! * [`core`] — the engine: recommender lifecycle, RecScoreIndex, caching
//! * [`server`] — TCP serving layer: wire protocol, admission control, client
//! * [`ontop`] — the OnTopDB baseline the paper compares against
//! * [`datasets`] — seeded synthetic MovieLens / LDOS-CoMoDa / Yelp data
//!
//! ## Quickstart
//!
//! ```
//! use recdb::core::RecDb;
//!
//! let mut db = RecDb::new();
//! db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)").unwrap();
//! db.execute("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0), (2, 3, 5.0)").unwrap();
//! db.execute(
//!     "CREATE RECOMMENDER MovieRec ON ratings \
//!      USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
//! ).unwrap();
//! let result = db.query(
//!     "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
//!      RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
//!      WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10",
//! ).unwrap();
//! assert!(!result.rows().is_empty());
//! ```

// Runnable walkthroughs live in `examples/`:
//   quickstart.rs            — Figure 1 movie schema, first RECOMMEND query
//   movie_recommendation.rs  — the paper's movie scenarios end to end
//   poi_recommendation.rs    — spatial (location-aware) recommendation
//   adaptive_caching.rs      — Algorithm 4 materialize/evict in action
//   durable.rs               — WAL + checkpoint crash/recovery cycle
//   explain_analyze.rs       — EXPLAIN ANALYZE plan trees + Prometheus metrics
//   sql_shell.rs             — interactive REPL over the full dialect
//   server.rs                — TCP serving: server + reconnecting client
pub use recdb_algo as algo;
pub use recdb_core as core;
pub use recdb_datasets as datasets;
pub use recdb_exec as exec;
pub use recdb_fault as fault;
pub use recdb_guard as guard;
pub use recdb_obs as obs;
pub use recdb_ontop as ontop;
pub use recdb_server as server;
pub use recdb_spatial as spatial;
pub use recdb_sql as sql;
pub use recdb_storage as storage;
pub use recdb_wal as wal;
