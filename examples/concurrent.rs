//! Concurrent sessions walkthrough: one `Arc`-shared engine serving
//! several threads at once. Two writers load disjoint slices of ratings
//! inside explicit transactions (one of them deliberately rolls back),
//! while reader threads run RECOMMEND queries the whole time — readers
//! share their locks and never block each other; writers serialize on
//! the table and time out instead of deadlocking.
//!
//! Run with: `cargo run --example concurrent`

use recdb::core::RecDb;
use std::sync::Arc;
use std::thread;

const RECOMMEND: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";

fn main() {
    let db = Arc::new(RecDb::new());
    db.execute_script(
        "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
         INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                    (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);
         CREATE RECOMMENDER GeneralRec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;",
    )
    .expect("load + train");

    // --- Writers: one commits, one changes its mind. ------------------
    let committer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let mut session = db.session();
            session.execute("BEGIN").expect("begin");
            for iid in 4..=6 {
                session
                    .execute(&format!("INSERT INTO ratings VALUES (5, {iid}, 4.0)"))
                    .expect("insert");
            }
            session.execute("COMMIT").expect("commit");
        })
    };
    let abandoner = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let mut session = db.session();
            session.execute("BEGIN").expect("begin");
            session
                .execute("INSERT INTO ratings VALUES (6, 1, 0.5)")
                .expect("insert");
            session.execute("ROLLBACK").expect("rollback");
        })
    };

    // --- Readers: recommendations keep flowing throughout. ------------
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let mut served = 0usize;
                for _ in 0..20 {
                    let rows = db.query(RECOMMEND).expect("recommend");
                    served += usize::from(!rows.is_empty());
                }
                println!("reader {r}: {served}/20 queries answered");
                served
            })
        })
        .collect();

    committer.join().expect("committer");
    abandoner.join().expect("abandoner");
    for handle in readers {
        assert_eq!(handle.join().expect("reader"), 20);
    }

    // The committed transaction is visible; the rolled-back one is gone.
    let five = db
        .query("SELECT iid FROM ratings WHERE uid = 5")
        .expect("scan");
    let six = db
        .query("SELECT iid FROM ratings WHERE uid = 6")
        .expect("scan");
    println!("user 5 rows (committed): {}", five.len());
    println!("user 6 rows (rolled back): {}", six.len());
    assert_eq!(five.len(), 3);
    assert_eq!(six.len(), 0);
    assert_eq!(db.lock_table().held_count(), 0, "all locks released");
    println!("shared engine survived {} sessions ✓", 6);
}
