//! Bounded-memory walkthrough: run the same workload on an engine
//! squeezed into an 8-frame buffer pool and on an unbounded one, show
//! the answers are identical, and read the pool counters that reveal
//! the difference — hit rate, evictions, and zero pinned pages at rest.
//!
//! Run with: `cargo run --release --example bounded_memory`

use recdb::core::{RecDb, RecDbConfig};

/// Build a ratings world big enough that its heap pages plus the two
/// RecScoreIndex B+-trees cannot fit in 8 frames.
fn load_world(db: &RecDb) {
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    let mut chunk = Vec::new();
    for u in 0..120i64 {
        for i in 0..80i64 {
            if (u + i) % 4 == 0 {
                continue; // held out so every user has unseen items
            }
            let val = f64::from(((u * 7 + i * 3) % 9 + 1) as i32) / 2.0;
            chunk.push(format!("({u}, {i}, {val})"));
            if chunk.len() == 500 {
                db.execute(&format!("INSERT INTO ratings VALUES {}", chunk.join(", ")))
                    .expect("insert chunk");
                chunk.clear();
            }
        }
    }
    if !chunk.is_empty() {
        db.execute(&format!("INSERT INTO ratings VALUES {}", chunk.join(", ")))
            .expect("insert tail");
    }
    db.execute(
        "CREATE RECOMMENDER Rec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
    )
    .expect("create recommender");
    db.materialize("Rec").expect("materialize");
}

fn top5(db: &RecDb, uid: i64) -> Vec<String> {
    let rows = db
        .query(&format!(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {uid} ORDER BY R.ratingval DESC LIMIT 5"
        ))
        .expect("recommend");
    (0..rows.len())
        .map(|i| {
            format!(
                "item {} scored {}",
                rows.value(i, "iid").expect("iid"),
                rows.value(i, "ratingval").expect("ratingval")
            )
        })
        .collect()
}

fn main() {
    // Eight 8 KiB frames: ~64 KiB of resident pages, however large the
    // table and index grow. The unbounded engine is the control.
    let bounded = RecDb::with_config(RecDbConfig {
        buffer_pool_pages: 8,
        ..RecDbConfig::default()
    });
    let unbounded = RecDb::with_config(RecDbConfig {
        buffer_pool_pages: usize::MAX,
        ..RecDbConfig::default()
    });
    load_world(&bounded);
    load_world(&unbounded);

    let pages = unbounded
        .catalog()
        .table("ratings")
        .expect("ratings")
        .heap()
        .page_count();
    println!("ratings heap: {pages} pages of 8 KiB; bounded pool: 8 frames\n");

    for uid in [1, 17, 63] {
        let (b, u) = (top5(&bounded, uid), top5(&unbounded, uid));
        assert_eq!(b, u, "answers must not depend on pool size");
        println!("user {uid}: {}", b.join(", "));
    }
    println!("\nbounded and unbounded answers identical ✓");

    // The pool counters tell the residency story the identical answers
    // hide (full catalog: docs/OBSERVABILITY.md; sizing: docs/STORAGE.md).
    for (name, db) in [("bounded(8)", &bounded), ("unbounded", &unbounded)] {
        let pool = db.buffer_pool();
        let (hits, misses) = (pool.hits(), pool.misses());
        println!(
            "{name:<12} hits={hits:<7} misses={misses:<6} hit rate={:.1}%  \
             evictions={}  pinned={}",
            100.0 * hits as f64 / (hits + misses).max(1) as f64,
            pool.evictions(),
            pool.pinned_pages(),
        );
        // Pins are operation-scoped: nothing may stay pinned at rest.
        assert_eq!(pool.pinned_pages(), 0, "pin leak");
    }
    assert!(bounded.buffer_pool().evictions() > 0);
    println!("\n8-frame engine really evicted and leaked no pins ✓");
}
