//! The adaptive materialization manager in action (§IV-C/D, Algorithm 4).
//!
//! Drives a skewed workload — a handful of hot users issue most queries
//! while a handful of hot items absorb most rating inserts — then runs the
//! cache manager and shows:
//!
//! 1. which user/item pairs it admits/evicts (the hotness decision),
//! 2. the top-k latency difference between a fully materialized user
//!    (IndexRecommend) and an online user (FilterRecommend + Sort),
//! 3. the demand/consumption-rate histograms behind the decision
//!    (the paper's Table I, live).
//!
//! ```text
//! cargo run --release --example adaptive_caching
//! ```

use recdb::core::{RecDb, RecDbConfig};
use recdb::datasets::SyntheticSpec;
use std::time::Instant;

fn main() {
    let mut db = RecDb::with_config(RecDbConfig {
        hotness_threshold: 0.5,
        auto_maintenance: false,
        ..RecDbConfig::default()
    });
    let dataset = recdb::datasets::generate(&SyntheticSpec::movielens().scaled(0.2));
    dataset.load_into(&mut db).expect("load dataset");
    db.execute(
        "CREATE RECOMMENDER cached ON ratings USERS FROM uid ITEMS FROM iid \
         RATINGS FROM ratingval USING ItemCosCF",
    )
    .expect("create recommender");

    // Skewed workload: users 1–5 are hot (many queries); five *tail*
    // items churn (many new ratings from new users). Tail items are
    // mostly unseen by the hot users, so hot pairs are materialization
    // candidates (Algorithm 4 only considers unseen pairs).
    let n_items = dataset.items.len() as i64;
    println!(
        "running a skewed workload (hot users 1-5, churning items {}..{})...",
        n_items - 5,
        n_items - 1
    );
    for round in 0..60 {
        let user = (round % 5) + 1;
        db.query(&format!(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {user} LIMIT 1"
        ))
        .expect("workload query");
        let item = n_items - 5 + (round % 5);
        db.execute(&format!(
            "INSERT INTO ratings VALUES ({}, {item}, 4.0)",
            10_000 + round
        ))
        .expect("workload insert");
    }
    // One cold query so user 50 appears in the histogram with low demand.
    db.query(
        "SELECT R.iid FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
         WHERE R.uid = 50 LIMIT 1",
    )
    .expect("cold query");

    // Run Algorithm 4.
    let decision = db.run_cache_manager("cached").expect("cache manager");
    println!(
        "cache manager: admitted {} pairs, evicted {} pairs",
        decision.admitted.len(),
        decision.evicted.len()
    );
    let sample: Vec<_> = decision.admitted.iter().take(8).collect();
    println!("first admitted pairs (user, item): {sample:?}");

    // The live Table I: demand/consumption rates behind the decision.
    let rec = db.recommender("cached").unwrap();
    rec.with_stats(|stats| {
        println!("\nUsers histogram (hot vs cold):");
        for u in [1i64, 2, 50] {
            if let Some(s) = stats.user(u) {
                println!(
                    "  user {u:>3}: QC={:<4} D_u={:.4} (D_MAX={:.4})",
                    s.query_count,
                    s.demand_rate,
                    stats.d_max()
                );
            }
        }
        println!("Items histogram:");
        for i in [n_items - 5, n_items - 4, n_items - 3] {
            if let Some(s) = stats.item(i) {
                println!(
                    "  item {i:>3}: UC={:<4} P_i={:.4} (P_MAX={:.4})",
                    s.update_count,
                    s.consumption_rate,
                    stats.p_max()
                );
            }
        }
    });
    println!(
        "\nmaterialized entries in RecScoreIndex: {}",
        rec.materialized_entries()
    );
    // Release the read guard before taking the write side below.
    drop(rec);

    // Latency comparison: materialize user 1 fully, leave user 50 online.
    db.recommender_mut("cached").unwrap().materialize_user(1);
    let topk = |db: &RecDb, user: i64| {
        let sql = format!(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = {user} ORDER BY R.ratingval DESC LIMIT 10"
        );
        let t = Instant::now();
        for _ in 0..20 {
            db.query(&sql).expect("topk");
        }
        t.elapsed() / 20
    };
    let hot = topk(&db, 1);
    let cold = topk(&db, 50);
    println!("\ntop-10 latency, materialized user 1 (IndexRecommend): {hot:?}");
    println!("top-10 latency, online user 50 (FilterRecommend+Sort): {cold:?}");
    println!(
        "speedup from pre-computation: {:.1}x",
        cold.as_secs_f64() / hot.as_secs_f64().max(1e-12)
    );
}
