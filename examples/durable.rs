//! Crash-safe durability walkthrough: open an engine on a data
//! directory, load ratings and a recommender, "crash" (drop without a
//! checkpoint), reopen, and show the same RECOMMEND answers come back —
//! rows and recommender definitions from the WAL, the model rebuilt from
//! the recovered ratings.
//!
//! Run with: `cargo run --example durable`

use recdb::core::RecDb;

const RECOMMEND: &str = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
     WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";

fn answers(db: &mut RecDb) -> Vec<String> {
    let rows = db.query(RECOMMEND).expect("recommend");
    (0..rows.len())
        .map(|i| {
            format!(
                "item {} scored {}",
                rows.value(i, "iid").expect("iid"),
                rows.value(i, "ratingval").expect("ratingval")
            )
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("recdb-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Session 1: load data, train a recommender, then crash. -------
    let before = {
        let mut db = RecDb::open(&dir).expect("open durable engine");
        println!("data dir: {}", db.data_dir().expect("durable").display());
        db.execute_script(
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                        (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);
             CREATE RECOMMENDER GeneralRec ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;",
        )
        .expect("load + train");
        let before = answers(&mut db);
        println!("\nrecommendations for user 1 (before the crash):");
        for line in &before {
            println!("  {line}");
        }
        before
        // `db` dropped here WITHOUT a checkpoint: that *is* the crash.
        // Every acknowledged statement is already fsynced in the WAL.
    };

    // --- Session 2: recovery replays the log and rebuilds the model. ---
    let mut db = RecDb::open(&dir).expect("reopen after crash");
    println!(
        "\nrecovered: {} ratings, recommenders = {:?}",
        db.query("SELECT uid FROM ratings").expect("count").len(),
        db.recommender_names(),
    );
    let after = answers(&mut db);
    println!("recommendations for user 1 (after recovery):");
    for line in &after {
        println!("  {line}");
    }
    assert_eq!(before, after, "recovery must reproduce the same answers");
    println!("\nsame answers before and after the crash ✓");

    // A checkpoint snapshots the pages and prunes the log, so the next
    // open skips replay entirely.
    db.checkpoint().expect("checkpoint");
    drop(db);
    let mut db = RecDb::open(&dir).expect("reopen from checkpoint");
    assert_eq!(answers(&mut db), before);
    println!("checkpointed reopen matches too ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
