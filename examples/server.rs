//! The TCP serving layer end to end: start a server over a shared
//! engine, connect a few reconnecting clients, run statements and a
//! transaction over the wire, survive an overload rejection, scrape the
//! metrics endpoint, and shut down gracefully.
//!
//! ```text
//! cargo run --release --example server
//! ```

use recdb::core::RecDb;
use recdb::server::{Client, ClientConfig, ClientError, ErrorCode, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // One engine, shared by every connection.
    let db = Arc::new(RecDb::new());
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(), // ephemeral port
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    println!("serving on {}", server.addr());

    // A client speaks length-prefixed frames; `execute` returns the same
    // typed results the embedded API produces.
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .execute("INSERT INTO ratings VALUES (1, 1, 5.0), (1, 2, 3.0), (2, 1, 4.0)")
        .expect("insert");
    let rows = client
        .query("SELECT uid, iid, ratingval FROM ratings WHERE uid = 1")
        .expect("select");
    println!("user 1 has {} ratings", rows.len());

    // Explicit transactions are per-connection: BEGIN/COMMIT travel over
    // the wire and a dead connection is rolled back by the server.
    client.execute("BEGIN").expect("begin");
    client
        .execute("INSERT INTO ratings VALUES (3, 1, 2.5)")
        .expect("txn insert");
    client.execute("COMMIT").expect("commit");

    // Admission control: with max_connections=2 and one slot taken, the
    // third concurrent connection is rejected with a *retryable* error —
    // the reconnecting client would back off and try again.
    let _second = Client::connect(server.addr()).expect("second connection");
    let rejected = Client::connect_with(
        server.addr(),
        ClientConfig {
            max_retries: 0,
            ..ClientConfig::default()
        },
    );
    match rejected {
        Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
            println!(
                "third connection rejected: {} (retryable={})",
                e, e.retryable
            );
        }
        other => println!("unexpected admission result: {other:?}"),
    }

    // The METRICS verb serves the Prometheus registry over the wire.
    let metrics = client.metrics_text().expect("metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("recdb_requests_total"))
        .unwrap_or("recdb_requests_total <missing>");
    println!("{line}");

    // Graceful shutdown: stop accepting, drain in-flight work, abort
    // orphaned transactions, release every lock.
    drop(client);
    let report = server.shutdown();
    println!(
        "shutdown: drained={} forced={} leaked={} in {:?}",
        report.drained_within_deadline,
        report.forced_connections,
        report.leaked_connections,
        report.elapsed
    );
    assert_eq!(db.lock_table().held_count(), 0);
}
