//! Movie recommendation at MovieLens scale (§VI's first scenario).
//!
//! Loads a scaled MovieLens-like dataset, creates recommenders for three
//! algorithms, and walks through the paper's query repertoire: plain
//! prediction (Query 2 shape), selective prediction (Query 3),
//! genre-filtered join (Query 4), and SVD top-k with a join (Query 5) —
//! printing the optimizer's plan for each so the FilterRecommend /
//! JoinRecommend / IndexRecommend choices are visible.
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```

use recdb::core::RecDb;
use recdb::datasets::SyntheticSpec;

fn show(db: &mut RecDb, title: &str, sql: &str) {
    println!("== {title}\n-- {sql}");
    println!("{}", db.explain(sql).expect("explain"));
    let rows = db.query(sql).expect("query");
    println!("{rows}");
}

fn main() {
    let mut db = RecDb::new();
    // A 10%-scale MovieLens keeps the example snappy in debug builds.
    let dataset = recdb::datasets::generate(&SyntheticSpec::movielens().scaled(0.1));
    dataset.load_into(&mut db).expect("load dataset");
    println!(
        "loaded {} users, {} movies, {} ratings\n",
        dataset.users.len(),
        dataset.items.len(),
        dataset.ratings.len()
    );

    for algo in ["ItemCosCF", "ItemPearCF", "SVD"] {
        db.execute(&format!(
            "CREATE RECOMMENDER movies_{algo} ON ratings USERS FROM uid \
             ITEMS FROM iid RATINGS FROM ratingval USING {algo}"
        ))
        .expect("create recommender");
        let rec = db.recommender(&format!("movies_{algo}")).unwrap();
        println!("built {algo:<11} model in {:?}", rec.build_time());
    }
    println!();

    // Query 3 shape: predict user 1's ratings for five specific movies.
    show(
        &mut db,
        "Predicted ratings for five specific movies (FilterRecommend)",
        "SELECT R.iid, R.ratingval FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
         WHERE R.uid = 150 AND R.iid IN (1, 2, 3, 4, 5)",
    );

    // Query 4 shape: genre-filtered join (JoinRecommend).
    show(
        &mut db,
        "Action-movie recommendations with names (JoinRecommend)",
        "SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
         WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Action' \
         ORDER BY R.ratingval DESC LIMIT 5",
    );

    // Query 5 shape: SVD top-5 Action movies. Materialize user 1 first so
    // the planner can pick IndexRecommend.
    db.recommender_mut("movies_SVD")
        .unwrap()
        .materialize_user(1);
    show(
        &mut db,
        "SVD top-5 (IndexRecommend over the pre-computed score index)",
        "SELECT R.iid, R.ratingval FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD \
         WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5",
    );

    // Recommendation analytics: aggregates compose with RECOMMEND.
    show(
        &mut db,
        "Analytics: recommendation volume and mean score per user (GROUP BY)",
        "SELECT R.uid, COUNT(*) AS n, AVG(R.ratingval) AS mean \
         FROM ratings AS R \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
         WHERE R.uid IN (1, 2, 3, 4, 5) \
         GROUP BY R.uid ORDER BY mean DESC",
    );
    show(
        &mut db,
        "Analytics: catalog composition (plain SQL aggregate)",
        "SELECT genre, COUNT(*) AS movies FROM movies \
         GROUP BY genre ORDER BY movies DESC LIMIT 5",
    );

    // The non-personalized fallback: same ranking for everyone.
    db.execute(
        "CREATE RECOMMENDER movies_pop ON ratings USERS FROM uid \
         ITEMS FROM iid RATINGS FROM ratingval USING Popularity",
    )
    .expect("popularity recommender");

    // Algorithms disagree — show the top picks side by side.
    println!("== Top pick per algorithm for user 1");
    for algo in ["ItemCosCF", "ItemPearCF", "SVD", "Popularity"] {
        let rows = db
            .query(&format!(
                "SELECT R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING {algo} \
                 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 1"
            ))
            .expect("query");
        let item = rows.value(0, "iid").map(|v| v.to_string());
        let score = rows.value(0, "ratingval").map(|v| v.to_string());
        println!(
            "  {algo:<11} -> movie {} (predicted {})",
            item.unwrap_or_else(|| "-".into()),
            score.unwrap_or_else(|| "-".into())
        );
    }
}
