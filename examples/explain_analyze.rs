//! Inspecting a query: `EXPLAIN ANALYZE` plan trees and engine metrics.
//!
//! Builds the quickstart's Figure 1 movie world, then profiles the paper's
//! top-k query twice — once served online (FilterRecommend + TopKSort) and
//! once from the materialized RecScoreIndex (IndexRecommend) — so the plan
//! trees show both access paths with their actual row counts and timings.
//! Ends with the engine-wide Prometheus metrics dump.
//!
//! ```text
//! cargo run --example explain_analyze
//! ```

use recdb::core::RecDb;

fn print_plan(db: &mut RecDb, sql: &str) {
    let plan = db.query(sql).expect("explain analyze");
    for i in 0..plan.len() {
        println!("{}", plan.value(i, "plan").expect("plan column"));
    }
}

fn main() {
    let mut db = RecDb::new();
    db.execute_script(
        "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
         INSERT INTO ratings VALUES
            (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5), (2, 3, 2.0),
            (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);
         CREATE RECOMMENDER GeneralRec ON ratings \
            USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval \
            USING ItemCosCF;",
    )
    .expect("schema + recommender");

    let sql = "EXPLAIN ANALYZE SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
               RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
               WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10";

    // Online path: scores are computed per query, then top-k sorted.
    println!("-- {sql}\n");
    println!("Before materialization (online FilterRecommend):");
    print_plan(&mut db, sql);

    // Materialize the score index; the optimizer now picks IndexRecommend,
    // which serves pre-computed scores in descending order (no sort).
    db.materialize("GeneralRec").expect("materialize");
    println!("\nAfter materialization (IndexRecommend):");
    print_plan(&mut db, sql);

    // Everything the engine counted along the way, in Prometheus text
    // format: statements by kind, index hits/misses, model build times...
    println!("\n-- RecDb::render_metrics()\n");
    print!("{}", db.render_metrics());
}
