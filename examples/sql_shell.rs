//! An interactive RecDB-rs shell.
//!
//! Starts with the paper's Figure 1 database pre-loaded (users, movies,
//! ratings, and the `GeneralRec` ItemCosCF recommender) so recommendation
//! queries work immediately. Statements end with `;` and may span lines.
//!
//! ```text
//! cargo run --example sql_shell
//! recdb> SELECT R.iid, R.ratingval FROM ratings AS R
//!     -> RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
//!     -> WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10;
//! ```
//!
//! Meta-commands: `\d` lists tables and recommenders, `\q` quits.

use recdb::core::{QueryResult, RecDb};
use std::io::{BufRead, Write};

fn seed(db: &mut RecDb) {
    db.execute_script(
        "CREATE TABLE users (uid INT, name TEXT, city TEXT);
         CREATE TABLE movies (mid INT, name TEXT, genre TEXT);
         CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
         INSERT INTO users VALUES (1, 'Alice', 'Minneapolis'), (2, 'Bob', 'Austin'),
                                  (3, 'Carol', 'Minneapolis'), (4, 'Eve', 'San Diego');
         INSERT INTO movies VALUES (1, 'Spartacus', 'Action'),
                                   (2, 'Inception', 'Suspense'),
                                   (3, 'The Matrix', 'Sci-Fi');
         INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                    (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);
         CREATE RECOMMENDER GeneralRec ON ratings
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;",
    )
    .expect("seed data");
}

fn describe(db: &RecDb) {
    println!("tables:");
    for name in db.catalog().table_names() {
        let catalog = db.catalog();
        let t = catalog.table(name).expect("listed table exists");
        let cols: Vec<String> = t
            .schema()
            .columns()
            .iter()
            .map(|c| format!("{} {}", c.name, c.data_type))
            .collect();
        println!("  {name} ({}) — {} rows", cols.join(", "), t.tuple_count());
    }
    println!("recommenders:");
    for name in db.recommender_names() {
        let r = db.recommender(&name).expect("listed recommender exists");
        println!(
            "  {name} ON {} USING {} — trained on {} ratings, {} materialized entries",
            r.ratings_table(),
            r.algorithm(),
            r.model().trained_on(),
            r.materialized_entries()
        );
    }
}

fn main() {
    let mut db = RecDb::new();
    seed(&mut db);
    println!(
        "RecDB-rs shell — Figure 1 data pre-loaded; `\\d` describes, `\\q` quits.\n\
         Statements end with `;`."
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "recdb> "
            } else {
                "    -> "
            }
        );
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "exit" | "quit" => break,
                "\\d" => {
                    describe(&db);
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        match db.execute(&sql) {
            Ok(QueryResult::Rows(rows)) => println!("{rows}"),
            Ok(QueryResult::Inserted(n)) => println!("INSERT {n}"),
            Ok(QueryResult::Deleted(n)) => println!("DELETE {n}"),
            Ok(QueryResult::Updated(n)) => println!("UPDATE {n}"),
            Ok(QueryResult::TableCreated(name)) => println!("CREATE TABLE {name}"),
            Ok(QueryResult::TableDropped(name)) => println!("DROP TABLE {name}"),
            Ok(QueryResult::RecommenderCreated { name, build_time }) => {
                println!("CREATE RECOMMENDER {name} (model built in {build_time:?})")
            }
            Ok(QueryResult::RecommenderDropped(name)) => {
                println!("DROP RECOMMENDER {name}")
            }
            Ok(QueryResult::IndexCreated(name)) => println!("CREATE INDEX {name}"),
            Ok(QueryResult::IndexDropped(name)) => println!("DROP INDEX {name}"),
            Ok(QueryResult::TransactionStarted) => println!("BEGIN"),
            Ok(QueryResult::TransactionCommitted) => println!("COMMIT"),
            Ok(QueryResult::TransactionRolledBack) => println!("ROLLBACK"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("bye");
}
