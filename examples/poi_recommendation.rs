//! Location-aware POI recommendation — the paper's §V case study.
//!
//! Reproduces both scenarios on a scaled Yelp-like dataset:
//!
//! * **Scenario 1** (paper Query 6): Alice plans a trip to San Diego and
//!   wants hotels inside the urban area, ranked by predicted rating —
//!   `ST_Contains` filters the recommendations spatially.
//! * **Scenario 2** (paper Queries 7–8): having arrived, she wants nearby
//!   restaurants — `ST_DWithin` restricts to a radius, and `CScore`
//!   combines predicted rating with spatial proximity for the final
//!   ranking.
//!
//! ```text
//! cargo run --release --example poi_recommendation
//! ```

use recdb::core::RecDb;
use recdb::datasets::SyntheticSpec;

fn main() {
    let mut db = RecDb::new();
    let dataset = recdb::datasets::generate(&SyntheticSpec::yelp().scaled(0.1));
    dataset.load_into(&mut db).expect("load dataset");
    println!(
        "loaded {} users, {} businesses in {} cities, {} reviews\n",
        dataset.users.len(),
        dataset.items.len(),
        dataset.cities.len(),
        dataset.ratings.len()
    );

    // Paper Recommender 2: an ItemCosCF POI recommender. (The paper also
    // creates a UserPearCF recommender; both work here.)
    db.execute(
        "CREATE RECOMMENDER POI_ItemCosCF_Rec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
    )
    .expect("create recommender");
    db.execute(
        "CREATE RECOMMENDER POI_UserPearCF_Rec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING UserPearCF",
    )
    .expect("create recommender");

    // ---- Scenario 1 / Query 6: POIs inside the San Diego urban area.
    let query6 = "SELECT B.name, R.ratingval \
                  FROM ratings AS R, businesses AS B, cities AS C \
                  RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                  WHERE R.uid = 1 AND R.iid = B.bid AND C.name = 'San Diego' \
                  AND ST_Contains(C.geom, B.loc) \
                  ORDER BY R.ratingval DESC LIMIT 10";
    println!("== Scenario 1 (Query 6): hotels in 'San Diego' for user 1");
    println!("-- {query6}");
    println!("{}", db.query(query6).expect("query 6"));

    // Alice's current location: center of the San Diego cell.
    let sd = dataset
        .cities
        .iter()
        .find(|c| c.name == "San Diego")
        .expect("city exists");
    let (cx, cy) = ((sd.rect.0 + sd.rect.2) / 2.0, (sd.rect.1 + sd.rect.3) / 2.0);

    // ---- Scenario 2 / Query 7: restaurants within 500 units, top-10 by
    // predicted rating.
    let query7 = format!(
        "SELECT B.name, R.ratingval FROM ratings AS R, businesses AS B \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF \
         WHERE R.uid = 1 AND R.iid = B.bid \
         AND ST_DWithin(POINT({cx}, {cy}), B.loc, 500) \
         ORDER BY R.ratingval DESC LIMIT 10"
    );
    println!("== Scenario 2 (Query 7): POIs within 500 units of ({cx}, {cy})");
    println!("-- {query7}");
    println!("{}", db.query(&query7).expect("query 7"));

    // ---- Scenario 2 / Query 8: rank by the combined rating/proximity
    // score.
    let query8 = format!(
        "SELECT B.name, R.ratingval, \
                CScore(R.ratingval, ST_Distance(B.loc, POINT({cx}, {cy}))) AS combined \
         FROM ratings AS R, businesses AS B \
         RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF \
         WHERE R.uid = 1 AND R.iid = B.bid \
         ORDER BY CScore(R.ratingval, ST_Distance(B.loc, POINT({cx}, {cy}))) DESC \
         LIMIT 3"
    );
    println!("== Scenario 2 (Query 8): top-3 by combined CScore");
    println!("-- {query8}");
    println!("{}", db.query(&query8).expect("query 8"));
}
