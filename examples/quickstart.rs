//! Quickstart: the paper's Figure 1 world in a dozen statements.
//!
//! Creates the users/movies/ratings tables, trains the `GeneralRec`
//! recommender (paper Recommender 1), and runs paper Query 1 — "Return ten
//! movies to user 1 using Item-Item Collaborative Filtering".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use recdb::core::RecDb;

fn main() {
    let db = RecDb::new();

    db.execute_script(
        "CREATE TABLE users (uid INT, name TEXT, city TEXT);
         CREATE TABLE movies (mid INT, name TEXT, genre TEXT);
         CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);

         INSERT INTO users VALUES
            (1, 'Alice', 'Minneapolis, MN'),
            (2, 'Bob', 'Austin, TX'),
            (3, 'Carol', 'Minneapolis, MN'),
            (4, 'Eve', 'San Diego, CA');

         INSERT INTO movies VALUES
            (1, 'Spartacus', 'Action'),
            (2, 'Inception', 'Suspense'),
            (3, 'The Matrix', 'Sci-Fi');

         INSERT INTO ratings VALUES
            (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5), (2, 3, 2.0),
            (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);",
    )
    .expect("schema + data");

    // Paper Recommender 1: "GeneralRec, an ItemCosCF recommender created
    // on the input data stored in the Ratings table".
    db.execute(
        "CREATE RECOMMENDER GeneralRec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval \
         USING ItemCosCF",
    )
    .expect("create recommender");

    // Paper Query 1: top-10 movies for user 1.
    let sql = "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
               RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
               WHERE R.uid = 1 \
               ORDER BY R.ratingval DESC LIMIT 10";
    println!("-- {sql}\n");
    println!("{}", db.explain(sql).expect("explain"));
    let result = db.query(sql).expect("query");
    println!("{result}");

    // The same recommendations joined with movie names (paper Query 4
    // without the genre filter).
    let joined = db
        .query(
            "SELECT M.name, R.ratingval FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND M.mid = R.iid \
             ORDER BY R.ratingval DESC LIMIT 10",
        )
        .expect("join query");
    println!("With movie names:\n{joined}");
}
