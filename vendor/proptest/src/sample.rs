//! Collection sampling helpers (`prop::sample`).

/// An index into a collection of not-yet-known length, mirroring
/// `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Wrap a raw draw.
    pub fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements (`len` > 0).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        self.0 % len
    }
}
