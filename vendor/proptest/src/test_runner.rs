//! The case runner and its deterministic RNG.

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Give-up threshold for `prop_filter` rejections per generated value.
    pub max_local_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_local_rejects: 1024,
        }
    }
}

impl Config {
    /// A config running `cases` random cases (everything else default).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Deterministic xoshiro256** RNG seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of test `name` — deterministic across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name mixes per-test streams apart.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Run `config.cases` random cases of `case_fn`, panicking on the first
/// failure with the case number (re-runs are deterministic, so the case
/// number is a reproduction handle).
pub fn run<F>(config: &Config, name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(msg) = case_fn(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}
