//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Reject generated values failing `pred` (regenerating up to a bound).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 candidates: {}", self.reason);
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

// ------------------------------------------------------------ primitives

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-1.0f64..2.0).generate(&mut r);
            assert!((-1.0..2.0).contains(&f));
            let u = (1u8..=10).generate(&mut r);
            assert!((1..=10).contains(&u));
        }
    }

    #[test]
    fn full_i64_inclusive_range_works() {
        let mut r = rng();
        let _ = (0i64..=i64::MAX).generate(&mut r);
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut r = rng();
        let s = (0i64..10)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |&v| v != 0)
            .prop_flat_map(|v| 0i64..v.max(1));
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((0..18).contains(&v));
        }
    }

    #[test]
    fn union_uses_all_arms() {
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }
}
