//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes (no NaN/inf: they break
        // most round-trip properties and real proptest also defaults to
        // finite-heavy generation).
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The whole-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
