//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest 1.x API its tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], `collection::{vec, btree_map, btree_set}`,
//! `option::of`, a character-class subset of string-regex strategies,
//! `sample::Index`, and the `proptest!` / `prop_assert*!` / `prop_oneof!`
//! macros. Cases are generated from a per-case deterministic RNG; there
//! is no shrinking — a failing case reports its case number and message.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The proptest prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-tree alias, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy, string};
    }
}

/// Assert a condition inside a `proptest!` body; failure rejects the case
/// with a message instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` at {}:{}",
                ::std::stringify!($cond),
                ::std::file!(),
                ::std::line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` at {}:{}: {}",
                ::std::stringify!($cond),
                ::std::file!(),
                ::std::line!(),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                left,
                right,
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($left), &($right));
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}: {}",
                left,
                right,
                ::std::file!(),
                ::std::line!(),
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                left,
                right,
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::Config::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}
