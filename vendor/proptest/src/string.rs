//! String generation from a character-class subset of regex syntax.
//!
//! Supports exactly the shapes this workspace's tests use: sequences of
//! literal characters and `[...]` classes (with `a-z` ranges and `\t`,
//! `\n`, `\\`, `\]`, `\-` escapes), each optionally followed by `{n}` or
//! `{m,n}` repetition. Anything else is rejected with a panic naming the
//! unsupported construct, so a new pattern fails loudly rather than
//! generating garbage.

use crate::test_runner::TestRng;

#[derive(Debug)]
struct Element {
    /// Candidate characters.
    chars: Vec<char>,
    /// Repetition bounds (inclusive).
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut elements = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut body = Vec::new();
                loop {
                    match chars.next() {
                        None => panic!("unterminated [class in pattern `{pattern}`"),
                        Some(']') => break,
                        Some('\\') => {
                            let e = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
                            body.push(unescape(e));
                        }
                        Some(lo) => {
                            // `lo-hi` range, unless `-` is the class's last
                            // character.
                            if chars.peek() == Some(&'-') {
                                let mut clone = chars.clone();
                                clone.next();
                                match clone.peek() {
                                    Some(&']') | None => body.push(lo),
                                    Some(&hi) => {
                                        chars.next();
                                        chars.next();
                                        let hi = if hi == '\\' {
                                            unescape(chars.next().unwrap_or_else(|| {
                                                panic!("dangling escape in `{pattern}`")
                                            }))
                                        } else {
                                            hi
                                        };
                                        assert!(
                                            lo <= hi,
                                            "inverted range {lo}-{hi} in `{pattern}`"
                                        );
                                        body.extend(lo..=hi);
                                    }
                                }
                            } else {
                                body.push(lo);
                            }
                        }
                    }
                }
                assert!(!body.is_empty(), "empty [class] in `{pattern}`");
                body
            }
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
                vec![unescape(e)]
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$' => {
                panic!("unsupported regex construct `{c}` in `{pattern}` (vendored proptest stub)")
            }
            literal => vec![literal],
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} lower bound"),
                    hi.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad {n} repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in `{pattern}`");
        elements.push(Element {
            chars: set,
            min,
            max,
        });
    }
    elements
}

/// Generate one string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for el in parse(pattern) {
        let n = el.min + rng.below(el.max - el.min + 1);
        for _ in 0..n {
            out.push(el.chars[rng.below(el.chars.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn ident_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z_][a-zA-Z0-9_]{0,10}", &mut r);
            assert!(!s.is_empty() && s.len() <= 11);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_with_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~\\t\\n]{0,200}", &mut r);
            assert!(s.len() <= 200);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\t' || c == '\n'));
        }
    }

    #[test]
    fn class_with_quote() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z0-9 ']{0,30}", &mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
        }
    }

    #[test]
    fn literal_characters() {
        let mut r = rng();
        assert_eq!(generate_matching("abc", &mut r), "abc");
        assert_eq!(generate_matching("a{3}", &mut r), "aaa");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_construct_panics() {
        let mut r = rng();
        let _ = generate_matching("(a|b)+", &mut r);
    }
}
