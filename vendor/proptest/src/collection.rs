//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// A target size for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap` with size drawn from `size` (best-effort when
/// key collisions make the target unreachable).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut tries = 0;
        while map.len() < n && tries < n * 10 + 16 {
            tries += 1;
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// Strategy for `BTreeSet` with size drawn from `size` (best-effort when
/// element collisions make the target unreachable).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut tries = 0;
        while set.len() < n && tries < n * 10 + 16 {
            tries += 1;
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0i64..5, 2..7);
        let mut rng = crate::test_runner::TestRng::for_case("collection", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn exact_size_vec() {
        let s = vec(0i64..5, 4usize);
        let mut rng = crate::test_runner::TestRng::for_case("collection", 1);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }

    #[test]
    fn btree_set_dedups() {
        let s = btree_set(0i64..3, 1..4);
        let mut rng = crate::test_runner::TestRng::for_case("collection", 2);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 3);
        }
    }
}
