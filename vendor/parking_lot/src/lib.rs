//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `parking_lot` API it uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock`/`read`/`write`
//! methods (a panic while holding a guard does not poison the lock,
//! matching `parking_lot` semantics). Backed by `std::sync`.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
