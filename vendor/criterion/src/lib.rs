//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs a short warm-up, then up to `sample_size` timed samples bounded
//! by `measurement_time`, and prints min / median / mean wall-clock times
//! to stdout. No statistics beyond that, no HTML reports, no comparison
//! with previous runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parse CLI arguments — accepted for API compatibility; the stub
    /// ignores filters and always runs every benchmark.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        let id = id.into();
        group.run(&id.0, &mut f);
        self
    }
}

/// A named benchmark within a group (`BenchmarkId::new("series", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose `series/parameter`.
    pub fn new(series: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", series.into(), parameter))
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark name.
#[derive(Debug, Clone)]
pub struct BenchId(String);

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.0)
    }
}

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_owned())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to attempt per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                deadline: Instant::now() + self.warm_up_time,
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.mode = Mode::Measure {
            deadline: Instant::now() + self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, id);
    }
}

enum Mode {
    WarmUp {
        deadline: Instant,
    },
    Measure {
        deadline: Instant,
        target_samples: usize,
    },
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly under the current phase's budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { deadline } => {
                // At least one warm-up run, more while budget remains.
                loop {
                    black_box(routine());
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            Mode::Measure {
                deadline,
                target_samples,
            } => {
                for i in 0..target_samples {
                    let start = Instant::now();
                    black_box(routine());
                    self.samples.push(start.elapsed());
                    // Always collect at least two samples so the median is
                    // meaningful, then respect the time budget.
                    if i >= 1 && Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let median = self.samples[n / 2];
        let min = self.samples[0];
        let mean = self.samples.iter().sum::<Duration>() / n as u32;
        println!("{group}/{id}: median {median:?}, mean {mean:?}, min {min:?} ({n} samples)");
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls >= 2, "warm-up + samples should call the routine");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("series", 10).0, "series/10");
    }
}
