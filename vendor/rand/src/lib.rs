//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the `rand 0.8` API it uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges. The generator is xoshiro256** seeded via SplitMix64 — high
//! quality and fully deterministic for a given seed, though the stream
//! differs from upstream `StdRng` (ChaCha12). Everything in this
//! workspace derives randomness through this API, so determinism is
//! preserved end to end.

use std::ops::{Range, RangeInclusive};

/// RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, the
        // standard seeding procedure recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types uniformly samplable from an interval (mirrors
/// `rand::distributions::uniform::SampleUniform`). A single blanket
/// `SampleRange` impl over this trait keeps type inference working the
/// way upstream `rand` does (`gen_range(-0.5..0.5)` must infer `f64`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                if lo == hi {
                    return lo;
                }
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value over `T`'s domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f: f64 = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
